//! CANopen network management: node guarding and heartbeat.
//!
//! "The industry standard CAN Application Layer (CAL), e.g. used in
//! the CANopen communication profile, specifically defines network
//! management service elements for the detection of node crash
//! failures. A master-slave architecture is used: one master node
//! cyclically inquires each slave node, through the issuing of a CAN
//! remote frame; the slave node replies with its actual state.
//! Alternatively, a producer-consumer communication model can be used:
//! nodes broadcast a heartbeat message containing their status. The
//! main disadvantages of this approach are related to: its centralized
//! nature; the lack of an effective support to fault-tolerant node
//! failure detection and site membership services." (Sec. 6.6)

use can_controller::{Application, Ctx, DriverEvent, TimerId};
use can_types::{BitTime, Mid, MsgType, NodeId, NodeSet, Payload};
use std::any::Any;
use std::collections::HashMap;

const TAG_GUARD_TICK: u64 = 1;
const TAG_PRODUCE: u64 = 2;
const TAG_CONSUME_BASE: u64 = 0x100;

/// The node-guarding **master**: polls each slave with a remote frame
/// every `guard_time`; a slave silent for `guard_time ×
/// life_time_factor` is declared failed (locally — there is no
/// distributed agreement, which is exactly the weakness the paper
/// points out).
#[derive(Debug)]
pub struct CanopenMaster {
    guard_time: BitTime,
    life_time_factor: u32,
    slaves: NodeSet,
    last_response: HashMap<NodeId, BitTime>,
    detected: Vec<(BitTime, NodeId)>,
    polls: u64,
}

impl CanopenMaster {
    /// Creates a master guarding `slaves`.
    ///
    /// # Panics
    ///
    /// Panics if `guard_time` is zero or `life_time_factor` is zero.
    pub fn new(guard_time: BitTime, life_time_factor: u32, slaves: NodeSet) -> Self {
        assert!(!guard_time.is_zero(), "guard time must be positive");
        assert!(life_time_factor > 0, "life time factor must be positive");
        CanopenMaster {
            guard_time,
            life_time_factor,
            slaves,
            last_response: HashMap::new(),
            detected: Vec::new(),
            polls: 0,
        }
    }

    /// Failures detected so far, with detection timestamps.
    pub fn detected(&self) -> &[(BitTime, NodeId)] {
        &self.detected
    }

    /// Remote-frame polls issued so far (bandwidth accounting).
    pub fn polls(&self) -> u64 {
        self.polls
    }

    fn node_life_time(&self) -> BitTime {
        self.guard_time * u64::from(self.life_time_factor)
    }

    fn tick(&mut self, ctx: &mut Ctx<'_>) {
        let now = ctx.now();
        let life = self.node_life_time();
        let mut newly_dead = Vec::new();
        for slave in self.slaves.iter() {
            // Poll.
            ctx.can_rtr_req(Mid::new(MsgType::NodeGuard, 0, slave));
            self.polls += 1;
            // Check.
            let last = self
                .last_response
                .get(&slave)
                .copied()
                .unwrap_or(BitTime::ZERO);
            if now.saturating_sub(last) > life {
                newly_dead.push(slave);
            }
        }
        for slave in newly_dead {
            self.slaves.remove(slave);
            self.detected.push((now, slave));
            ctx.journal(format_args!("CANopen: slave {slave} declared failed"));
        }
        ctx.start_alarm(self.guard_time, TAG_GUARD_TICK);
    }
}

impl Application for CanopenMaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Give slaves one full guard period before the first deadline
        // check.
        let now = ctx.now();
        for slave in self.slaves.iter() {
            self.last_response.insert(slave, now);
        }
        ctx.start_alarm(self.guard_time, TAG_GUARD_TICK);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &DriverEvent) {
        if let DriverEvent::DataInd { mid, .. } = event {
            if mid.msg_type() == MsgType::NodeGuard && self.slaves.contains(mid.node()) {
                self.last_response.insert(mid.node(), ctx.now());
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag == TAG_GUARD_TICK {
            self.tick(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A node-guarding **slave**: answers each poll with a status data
/// frame carrying the CANopen toggle bit.
#[derive(Debug, Default)]
pub struct CanopenSlave {
    toggle: bool,
    responses: u64,
}

impl CanopenSlave {
    /// Creates a slave.
    pub fn new() -> Self {
        CanopenSlave::default()
    }

    /// Responses issued so far.
    pub fn responses(&self) -> u64 {
        self.responses
    }
}

impl Application for CanopenSlave {
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &DriverEvent) {
        if let DriverEvent::RtrInd { mid } = event {
            if mid.msg_type() == MsgType::NodeGuard && mid.node() == ctx.me() {
                // Status 0x05 = operational, toggled per CiA 301.
                let status = 0x05u8 | if self.toggle { 0x80 } else { 0x00 };
                self.toggle = !self.toggle;
                self.responses += 1;
                ctx.can_data_req(
                    Mid::new(MsgType::NodeGuard, u16::from(self.toggle), ctx.me()),
                    Payload::from_slice(&[status]).expect("one byte"),
                );
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The producer–consumer **heartbeat** node: broadcasts its status
/// with `produce_period` and watches a set of producers, declaring one
/// failed after `consumer_time` of silence (CiA 301 recommends
/// `consumer_time ≥ 1.5 × produce_period`).
#[derive(Debug)]
pub struct HeartbeatNode {
    produce_period: Option<BitTime>,
    consumer_time: BitTime,
    watched: NodeSet,
    timers: HashMap<NodeId, TimerId>,
    detected: Vec<(BitTime, NodeId)>,
    beats: u64,
}

impl HeartbeatNode {
    /// Creates a heartbeat node. `produce_period = None` makes a pure
    /// consumer.
    ///
    /// # Panics
    ///
    /// Panics if `consumer_time` is zero while `watched` is non-empty.
    pub fn new(produce_period: Option<BitTime>, consumer_time: BitTime, watched: NodeSet) -> Self {
        assert!(
            watched.is_empty() || !consumer_time.is_zero(),
            "consumer time must be positive when watching producers"
        );
        HeartbeatNode {
            produce_period,
            consumer_time,
            watched,
            timers: HashMap::new(),
            detected: Vec::new(),
            beats: 0,
        }
    }

    /// Failures detected so far.
    pub fn detected(&self) -> &[(BitTime, NodeId)] {
        &self.detected
    }

    /// Heartbeats produced so far.
    pub fn beats(&self) -> u64 {
        self.beats
    }

    fn arm_consumer(&mut self, ctx: &mut Ctx<'_>, producer: NodeId) {
        if let Some(old) = self.timers.remove(&producer) {
            ctx.cancel_alarm(old);
        }
        let tid = ctx.start_alarm(
            self.consumer_time,
            TAG_CONSUME_BASE + u64::from(producer.as_u8()),
        );
        self.timers.insert(producer, tid);
    }

    fn beat(&mut self, ctx: &mut Ctx<'_>) {
        ctx.can_data_req(
            Mid::new(MsgType::Heartbeat, 0, ctx.me()),
            Payload::from_slice(&[0x05]).expect("one byte"),
        );
        self.beats += 1;
        if let Some(period) = self.produce_period {
            ctx.start_alarm(period, TAG_PRODUCE);
        }
    }
}

impl Application for HeartbeatNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.produce_period.is_some() {
            self.beat(ctx);
        }
        let watched = self.watched;
        for producer in watched.iter() {
            self.arm_consumer(ctx, producer);
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &DriverEvent) {
        if let DriverEvent::DataInd { mid, .. } = event {
            if mid.msg_type() == MsgType::Heartbeat && self.watched.contains(mid.node()) {
                self.arm_consumer(ctx, mid.node());
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if tag == TAG_PRODUCE {
            self.beat(ctx);
        } else if tag >= TAG_CONSUME_BASE {
            let producer = NodeId::new((tag - TAG_CONSUME_BASE) as u8);
            if self.watched.remove(producer) {
                self.timers.remove(&producer);
                self.detected.push((ctx.now(), producer));
                ctx.journal(format_args!("heartbeat: producer {producer} failed"));
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_bus::{BusConfig, FaultPlan};
    use can_controller::Simulator;

    fn n(id: u8) -> NodeId {
        NodeId::new(id)
    }

    #[test]
    fn guarding_master_sees_live_slaves_forever() {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        let slaves = NodeSet::from_bits(0b0110);
        sim.add_node(n(0), CanopenMaster::new(BitTime::new(10_000), 3, slaves));
        sim.add_node(n(1), CanopenSlave::new());
        sim.add_node(n(2), CanopenSlave::new());
        sim.run_until(BitTime::new(500_000));
        let master = sim.app::<CanopenMaster>(n(0));
        assert!(master.detected().is_empty());
        assert!(master.polls() > 50);
        assert!(sim.app::<CanopenSlave>(n(1)).responses() > 20);
    }

    #[test]
    fn guarding_master_detects_crash_within_lifetime() {
        let guard = BitTime::new(10_000);
        let factor = 3u32;
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        sim.add_node(
            n(0),
            CanopenMaster::new(guard, factor, NodeSet::from_bits(0b0110)),
        );
        sim.add_node(n(1), CanopenSlave::new());
        sim.add_node(n(2), CanopenSlave::new());
        let crash_at = BitTime::new(100_000);
        sim.schedule_crash(n(2), crash_at);
        sim.run_until(BitTime::new(500_000));
        let master = sim.app::<CanopenMaster>(n(0));
        assert_eq!(master.detected().len(), 1);
        let (when, who) = master.detected()[0];
        assert_eq!(who, n(2));
        // Detection within node-life-time plus one guard period.
        assert!(when > crash_at);
        assert!(when - crash_at <= guard * u64::from(factor + 1) + BitTime::new(1_000));
    }

    #[test]
    fn slave_toggles_its_response_bit() {
        let mut slave = CanopenSlave::new();
        assert!(!slave.toggle);
        let mut ctl = can_controller::Controller::new();
        let mut timers = can_controller::TimerWheel::new();
        let mut journal = Vec::new();
        for _ in 0..2 {
            let mut ctx = Ctx::new(
                BitTime::ZERO,
                n(1),
                &mut ctl,
                &mut timers,
                &mut journal,
                false,
            );
            slave.on_event(
                &mut ctx,
                &DriverEvent::RtrInd {
                    mid: Mid::new(MsgType::NodeGuard, 0, n(1)),
                },
            );
        }
        assert_eq!(slave.responses(), 2);
        assert_eq!(ctl.queue_len(), 2);
    }

    #[test]
    fn heartbeat_consumers_detect_silent_producer() {
        let period = BitTime::new(10_000);
        let consumer_time = BitTime::new(15_000); // 1.5 × period
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        for id in 0..3u8 {
            let watched = NodeSet::first_n(3) - NodeSet::singleton(n(id));
            sim.add_node(
                n(id),
                HeartbeatNode::new(Some(period), consumer_time, watched),
            );
        }
        let crash_at = BitTime::new(100_000);
        sim.schedule_crash(n(1), crash_at);
        sim.run_until(BitTime::new(300_000));
        for id in [0u8, 2] {
            let node = sim.app::<HeartbeatNode>(n(id));
            assert_eq!(node.detected().len(), 1, "node {id}");
            let (when, who) = node.detected()[0];
            assert_eq!(who, n(1));
            assert!(when - crash_at <= consumer_time + period);
        }
    }

    #[test]
    fn heartbeat_detection_is_not_agreed() {
        // The paper's criticism: producer-consumer detection has no
        // agreement — with an inconsistent final heartbeat, consumers
        // detect at different times.
        use can_bus::{AccepterSpec, FaultEffect, FaultMatcher, ScriptedFault};
        let period = BitTime::new(10_000);
        let consumer_time = BitTime::new(15_000);
        let mut faults = FaultPlan::none();
        faults.push_scripted(ScriptedFault {
            matcher: FaultMatcher {
                msg_type: Some(MsgType::Heartbeat),
                mid_node: Some(n(1)),
                not_before: BitTime::new(95_000),
                ..FaultMatcher::default()
            },
            effect: FaultEffect::InconsistentOmission {
                accepters: AccepterSpec::Exactly(NodeSet::singleton(n(0))),
                crash_sender: true,
            },
            count: 1,
        });
        let mut sim = Simulator::new(BusConfig::default(), faults);
        for id in 0..3u8 {
            let watched = NodeSet::first_n(3) - NodeSet::singleton(n(id));
            sim.add_node(
                n(id),
                HeartbeatNode::new(Some(period), consumer_time, watched),
            );
        }
        sim.run_until(BitTime::new(400_000));
        let t0 = sim.app::<HeartbeatNode>(n(0)).detected()[0].0;
        let t2 = sim.app::<HeartbeatNode>(n(2)).detected()[0].0;
        assert_ne!(
            t0, t2,
            "no agreement: the consumer that got the last heartbeat detects later"
        );
        assert!(t0 > t2);
    }

    #[test]
    fn pure_consumer_never_beats() {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        sim.add_node(
            n(0),
            HeartbeatNode::new(Some(BitTime::new(10_000)), BitTime::new(15_000), NodeSet::EMPTY),
        );
        sim.add_node(
            n(1),
            HeartbeatNode::new(None, BitTime::new(15_000), NodeSet::singleton(n(0))),
        );
        sim.run_until(BitTime::new(100_000));
        assert_eq!(sim.app::<HeartbeatNode>(n(1)).beats(), 0);
        assert!(sim.app::<HeartbeatNode>(n(1)).detected().is_empty());
    }
}
