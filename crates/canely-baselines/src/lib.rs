//! Baseline node-monitoring protocols the paper compares against.
//!
//! Section 6.6 (related work) and the comparison tables (Figs. 1 and
//! 11) situate CANELy against three industry designs, all implemented
//! here on the same simulated bus so latency and bandwidth are
//! directly comparable:
//!
//! * [`canopen`] — the CAN Application Layer / CANopen network
//!   management: **master–slave node guarding** (the master cyclically
//!   polls each slave with a remote frame) and the **producer–consumer
//!   heartbeat** alternative. Centralized; no agreement on failures.
//! * [`osek`] — **OSEK-NM** direct network management: every node is
//!   monitored by every other node through a logical ring. Detection
//!   latency grows with the ring size — "the period required to detect
//!   the failure of a node may be in the order of one second".
//! * [`ttp`] — a **TTP-style TDMA membership**: fail-silent nodes
//!   transmitting in statically scheduled slots; membership updates
//!   each round (Figs. 1/11 comparison columns).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod canopen;
pub mod osek;
pub mod ttp;

pub use canopen::{CanopenMaster, CanopenSlave, HeartbeatNode};
pub use osek::OsekNode;
pub use ttp::TtpNode;
