//! Regenerates **Fig. 10**: CAN bandwidth utilization by the site
//! membership protocols, as a function of the membership cycle period
//! `Tm`, under the paper's operating conditions (`n = 32`, `b = 8`,
//! `f = 4`, 1 Mbps).
//!
//! Four curves, as in the paper:
//!
//! * *no msh. changes* — explicit life-signs only;
//! * *f crash failures* — plus 4 crashes in the period of reference;
//! * *join/leave event* — plus a single join/leave settlement (c = 1);
//! * *multiple join/leave* — plus c = 20 requests.
//!
//! Both the **analytic** model (`canely-analysis`, the paper's
//! evaluation method) and the **simulator measurement** (this
//! reproduction's addition) are printed side by side.
//!
//! Run with `cargo run --release -p bench --bin fig10_bandwidth`.

use bench::{measure_baseline, measure_episode, pct, Fig10Setup};
use can_types::BitTime;
use canely_analysis::BandwidthModel;

fn main() {
    let csv = std::env::args().any(|a| a == "--csv");
    let model = BandwidthModel::paper_defaults();
    if csv {
        // Machine-readable series for external plotting.
        println!(
            "tm_ms,analytic_idle,analytic_crash,analytic_jl1,analytic_jl20,measured_idle,measured_crash,measured_jl1,measured_jl20"
        );
        for tm_ms in (30..=90).step_by(10) {
            let tm = BitTime::new(tm_ms * 1_000);
            let setup = Fig10Setup::paper(tm);
            println!(
                "{},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5},{:.5}",
                tm_ms,
                model.no_changes(tm),
                model.with_crashes(tm),
                model.with_join_leave(tm, 1),
                model.with_join_leave(tm, 20),
                measure_baseline(&setup, 8),
                measure_episode(&setup, 4, 0, 0).with_episode,
                measure_episode(&setup, 4, 1, 0).with_episode,
                measure_episode(&setup, 4, 10, 10).with_episode,
            );
        }
        return;
    }
    println!("Fig. 10 — CAN bandwidth utilization by the site membership protocols");
    println!("n = 32, b = 8, f = 4, j = 2, c = 20, 1 Mbps\n");
    println!(
        "{:>6} | {:^31} | {:^31}",
        "Tm", "analytic model (paper method)", "simulator measurement"
    );
    println!(
        "{:>6} | {:>7}{:>8}{:>8}{:>8} | {:>7}{:>8}{:>8}{:>8}",
        "(ms)", "idle", "crash", "j/l=1", "j/l=20", "idle", "crash", "j/l=1", "j/l=20"
    );
    println!("{}", "-".repeat(76));

    for tm_ms in (30..=90).step_by(10) {
        let tm = BitTime::new(tm_ms * 1_000);
        // Analytic curves.
        let a_idle = model.no_changes(tm);
        let a_crash = model.with_crashes(tm);
        let a_jl1 = model.with_join_leave(tm, 1);
        let a_jl20 = model.with_join_leave(tm, 20);

        // Measured curves (events accumulate, as in the paper's
        // conservative reading).
        let setup = Fig10Setup::paper(tm);
        let m_idle = measure_baseline(&setup, 8);
        let m_crash = measure_episode(&setup, 4, 0, 0).with_episode;
        let m_jl1 = measure_episode(&setup, 4, 1, 0).with_episode;
        let m_jl20 = measure_episode(&setup, 4, 10, 10).with_episode;

        println!(
            "{:>6} | {}{}{}{} | {}{}{}{}",
            tm_ms,
            pct(a_idle),
            pct(a_crash),
            pct(a_jl1),
            pct(a_jl20),
            pct(m_idle),
            pct(m_crash),
            pct(m_jl1),
            pct(m_jl20),
        );
    }

    println!();
    println!(
        "marginal cost per join/leave request at Tm = 30 ms: analytic {}",
        pct(model.marginal_request_cost(BitTime::new(30_000)))
    );
    println!(
        "(paper footnote: \"each join/leave request contributes with an increase of ~0.4%\")"
    );
}
