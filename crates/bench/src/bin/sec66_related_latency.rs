//! Regenerates the **Section 6.6** related-work comparison: failure
//! detection latency and bandwidth of CANopen node guarding, the
//! CANopen heartbeat, OSEK-NM and CANELy, measured on the same
//! simulated 1 Mbps bus.
//!
//! The paper's claims to reproduce:
//!
//! * CANopen/CAL — centralized; only the master detects, no agreement;
//! * OSEK-NM — "a potentially high utilization of network bandwidth
//!   and a high node failure detection latency … the period required
//!   to detect the failure of a node may be in the order of one
//!   second";
//! * CANELy — consistent detection within "tens of ms" for a fraction
//!   of the bandwidth.
//!
//! Run with `cargo run --release -p bench --bin sec66_related_latency`.

use bench::{measure_detection_latency, ms, pct};
use can_bus::{BusConfig, BusStats, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, MsgType, NodeId, NodeSet};
use canely::CanelyConfig;
use canely_baselines::{CanopenMaster, CanopenSlave, HeartbeatNode, OsekNode};

const N: u8 = 16;

struct Row {
    protocol: &'static str,
    latency: BitTime,
    bandwidth: f64,
    consistent: &'static str,
}

fn canopen_guarding() -> Row {
    // 100 ms guard time, life factor 3 — typical CiA 301 values.
    let guard = BitTime::new(100_000);
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    let slaves = NodeSet::first_n(N as usize) - NodeSet::singleton(NodeId::new(0));
    sim.add_node(NodeId::new(0), CanopenMaster::new(guard, 3, slaves));
    for id in 1..N {
        sim.add_node(NodeId::new(id), CanopenSlave::new());
    }
    let crash_at = BitTime::new(1_000_000);
    sim.schedule_crash(NodeId::new(5), crash_at);
    sim.run_until(BitTime::new(3_000_000));
    let detected = sim.app::<CanopenMaster>(NodeId::new(0)).detected()[0].0;
    let stats = sim
        .trace()
        .stats(BitTime::new(500_000), BitTime::new(1_000_000));
    Row {
        protocol: "CANopen node guarding",
        latency: detected - crash_at,
        bandwidth: stats.utilization_of(&[MsgType::NodeGuard]),
        consistent: "no (master only)",
    }
}

fn canopen_heartbeat() -> Row {
    let period = BitTime::new(100_000);
    let consumer = BitTime::new(150_000);
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..N {
        let watched = NodeSet::first_n(N as usize) - NodeSet::singleton(NodeId::new(id));
        sim.add_node(
            NodeId::new(id),
            HeartbeatNode::new(Some(period), consumer, watched),
        );
    }
    let crash_at = BitTime::new(1_000_000);
    sim.schedule_crash(NodeId::new(5), crash_at);
    sim.run_until(BitTime::new(3_000_000));
    let worst = (0..N)
        .filter(|&id| id != 5)
        .map(|id| sim.app::<HeartbeatNode>(NodeId::new(id)).detected()[0].0)
        .max()
        .expect("detected");
    let stats = sim
        .trace()
        .stats(BitTime::new(500_000), BitTime::new(1_000_000));
    Row {
        protocol: "CANopen heartbeat",
        latency: worst - crash_at,
        bandwidth: stats.utilization_of(&[MsgType::Heartbeat]),
        consistent: "no (per-consumer)",
    }
}

fn osek_nm() -> Row {
    // T_Typ = 50 ms: with n = 16 the ring circulates in 800 ms — the
    // "order of one second" regime of the paper.
    let t_typ = BitTime::new(50_000);
    let t_max = BitTime::new(260_000);
    let config = NodeSet::first_n(N as usize);
    // Worst case over crash phases.
    let mut worst = BitTime::ZERO;
    let mut bandwidth = 0.0;
    for phase in 0..4u64 {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        for id in 0..N {
            sim.add_node(NodeId::new(id), OsekNode::new(t_typ, t_max, config));
        }
        let crash_at = BitTime::new(2_000_000 + phase * 210_000);
        sim.schedule_crash(NodeId::new(N - 1), crash_at);
        sim.run_until(BitTime::new(8_000_000));
        let detected = (0..N - 1)
            .filter_map(|id| {
                sim.app::<OsekNode>(NodeId::new(id))
                    .detected()
                    .iter()
                    .find(|(_, who)| *who == NodeId::new(N - 1))
                    .map(|&(t, _)| t)
            })
            .min()
            .expect("detected");
        worst = worst.max(detected - crash_at);
        bandwidth = sim
            .trace()
            .stats(BitTime::new(1_000_000), BitTime::new(2_000_000))
            .utilization_of(&[MsgType::OsekRing, MsgType::OsekAlive]);
    }
    Row {
        protocol: "OSEK-NM logical ring",
        latency: worst,
        bandwidth,
        consistent: "eventually (ring)",
    }
}

fn canely_explicit() -> Row {
    // Idle nodes, explicit life-signs only, Th = 25 ms: the
    // "tens of ms" detection regime.
    let config = CanelyConfig::default().with_heartbeat_period(BitTime::new(25_000));
    let mut worst = BitTime::ZERO;
    for phase in 0..4u64 {
        let (_, max) = measure_detection_latency(N, &config, phase * 1_700);
        worst = worst.max(max);
    }
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..N {
        sim.add_node(NodeId::new(id), canely::CanelyStack::new(config.clone()));
    }
    sim.run_until(BitTime::new(1_000_000));
    let stats = sim
        .trace()
        .stats(BitTime::new(500_000), BitTime::new(1_000_000));
    Row {
        protocol: "CANELy (explicit ELS)",
        latency: worst,
        bandwidth: stats.utilization_of(&BusStats::MEMBERSHIP_SUITE),
        consistent: "yes (FDA agreement)",
    }
}

fn canely_implicit() -> Row {
    // Control applications have cyclic traffic: the implicit
    // heartbeat mechanism makes the suite's steady-state bandwidth
    // vanish while keeping the low-latency detection bound.
    let config = CanelyConfig::default().with_heartbeat_period(BitTime::new(25_000));
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..N {
        let stack = canely::CanelyStack::new(config.clone()).with_traffic(
            canely::TrafficConfig::periodic(BitTime::new(10_000), 8)
                .with_offset(BitTime::new(u64::from(id) * 97 + 11)),
        );
        sim.add_node(NodeId::new(id), stack);
    }
    let crash_at = BitTime::new(1_000_000);
    sim.schedule_crash(NodeId::new(5), crash_at);
    sim.run_until(BitTime::new(2_000_000));
    let worst = (0..N)
        .filter(|&id| id != 5)
        .filter_map(|id| {
            sim.app::<canely::CanelyStack>(NodeId::new(id))
                .events()
                .iter()
                .find(|(_, e)| {
                    matches!(e, canely::UpperEvent::FailureNotified(r) if *r == NodeId::new(5))
                })
                .map(|&(t, _)| t)
        })
        .max()
        .expect("detected");
    let stats = sim
        .trace()
        .stats(BitTime::new(500_000), BitTime::new(1_000_000));
    Row {
        protocol: "CANELy (implicit HB)",
        latency: worst - crash_at,
        bandwidth: stats.utilization_of(&BusStats::MEMBERSHIP_SUITE),
        consistent: "yes (FDA agreement)",
    }
}

fn main() {
    println!("Sec. 6.6 — Failure detection: related work vs CANELy");
    println!("n = {N} nodes, 1 Mbps, typical protocol parameters\n");
    println!(
        "{:<24} | {:>12} | {:>10} | consistent detection?",
        "Protocol", "worst det.", "bandwidth"
    );
    println!("{}", "-".repeat(76));
    for row in [
        canopen_guarding(),
        canopen_heartbeat(),
        osek_nm(),
        canely_explicit(),
        canely_implicit(),
    ] {
        println!(
            "{:<24} | {:>12} | {:>10} | {}",
            row.protocol,
            ms(row.latency),
            pct(row.bandwidth),
            row.consistent
        );
    }
    println!();
    println!("Paper claim: OSEK detection \"in the order of one second\"; CANELy membership");
    println!("latency in the tens of ms with consistent (agreed) failure notifications.");
}
