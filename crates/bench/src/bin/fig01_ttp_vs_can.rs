//! Regenerates **Fig. 1**: the TTP vs standard CAN comparison table.
//!
//! The paper's table is qualitative; this binary prints it and backs
//! two of its rows with *measurements* from the simulated substrate:
//!
//! * *omission handling* — standard CAN recovers omissions by frame
//!   retransmission (measured: an injected omission is masked by an
//!   automatic retransmission), while TTP masks by time-redundant
//!   frame diffusion in subsequent slots;
//! * *membership service* — TTP provides it (measured: a crash is
//!   reflected in every TTP node's view within two rounds), standard
//!   CAN does not (measured: nothing in the CAN layer reacts to a
//!   silent node).
//!
//! Run with `cargo run --release -p bench --bin fig01_ttp_vs_can`.

use can_bus::{BusConfig, FaultEffect, FaultMatcher, FaultPlan, ScriptedFault};
use can_controller::{Application, Ctx, DriverEvent, Simulator};
use can_types::{BitTime, Frame, Mid, MsgType, NodeId, NodeSet, Payload};
use canely_baselines::TtpNode;
use std::any::Any;

/// Plain CAN node: sends one message, counts receptions. No services.
#[derive(Default)]
struct PlainCan {
    send: bool,
    received: usize,
}

impl Application for PlainCan {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        if self.send {
            ctx.can_data_req(
                Mid::new(MsgType::AppData, 0, ctx.me()),
                Payload::from_slice(&[1, 2, 3]).expect("3 bytes"),
            );
        }
    }
    fn on_event(&mut self, _ctx: &mut Ctx<'_>, event: &DriverEvent) {
        if matches!(event, DriverEvent::DataInd { .. }) {
            self.received += 1;
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Measurement 1: standard CAN masks a consistent omission by
/// automatic retransmission (detection/recovery in the time domain is
/// NOT provided — only value-domain error detection plus retry).
fn measure_can_omission_recovery() -> (usize, usize) {
    let mut faults = FaultPlan::none();
    faults.push_scripted(ScriptedFault {
        matcher: FaultMatcher::any(),
        effect: FaultEffect::ConsistentOmission,
        count: 1,
    });
    let mut sim = Simulator::new(BusConfig::default(), faults);
    sim.add_node(
        NodeId::new(0),
        PlainCan {
            send: true,
            received: 0,
        },
    );
    sim.add_node(NodeId::new(1), PlainCan::default());
    sim.run_until(BitTime::new(10_000));
    let attempts = sim.trace().len();
    let delivered = sim.app::<PlainCan>(NodeId::new(1)).received;
    (attempts, delivered)
}

/// Measurement 2: TTP reflects a crash in every node's membership
/// within two TDMA rounds; plain CAN has no notion of it.
fn measure_ttp_membership() -> (BitTime, BitTime) {
    let slot = BitTime::new(500);
    let schedule = NodeSet::first_n(4);
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..4u8 {
        sim.add_node(NodeId::new(id), TtpNode::new(slot, schedule));
    }
    let crash_at = BitTime::new(10_000);
    sim.schedule_crash(NodeId::new(2), crash_at);
    sim.run_until(BitTime::new(50_000));
    let round = slot * 4;
    let worst = (0..4u8)
        .filter(|&id| id != 2)
        .map(|id| {
            sim.app::<TtpNode>(NodeId::new(id))
                .changes()
                .first()
                .expect("view change observed")
                .time
        })
        .max()
        .expect("observers exist");
    (worst - crash_at, round)
}

fn main() {
    println!("Fig. 1 — Comparison of TTP and standard CAN\n");
    let row = |parameter: &str, ttp: &str, can: &str| {
        println!("{parameter:<26} | {ttp:<28} | {can}");
    };
    row("Parameter", "TTP", "Standard CAN");
    println!("{}", "-".repeat(92));
    row(
        "Error detection domains",
        "value and time",
        "value domain",
    );
    row(
        "Omission handling",
        "masking (frame diffusion)",
        "detection/recovery (frame retransmission)",
    );
    row("Media redundancy", "no", "no");
    row("Channel redundancy", "yes", "no");
    row("Babbling idiot avoidance", "bus guardian", "not provided");
    row("Communications", "broadcast", "broadcast");
    row("Membership service", "provided", "not provided");
    row("Clock synchronization", "in the µs range", "-");

    println!("\nMeasured substantiation (this reproduction):");
    let (attempts, delivered) = measure_can_omission_recovery();
    println!(
        "  CAN omission handling: 1 injected omission -> {attempts} bus transactions, \
         message delivered {delivered}x (automatic retransmission recovers, \
         but only after detection — no masking)"
    );
    let (latency, round) = measure_ttp_membership();
    println!(
        "  TTP membership: crash reflected in every view within {} \
         (TDMA round = {}; bounded, synchronous masking-style detection)",
        bench::ms(latency),
        bench::ms(round)
    );
    let remote = Frame::remote(Mid::new(MsgType::Els, 0, NodeId::new(0)));
    println!(
        "  (context: one CAN remote frame occupies {} bit-times worst-case)",
        remote.duration_worst_case().as_u64()
    );
}
