//! Regenerates **Fig. 11**: the TTP / CAN / CANELy comparison table.
//!
//! Qualitative rows are printed as in the paper; quantitative rows
//! (inaccessibility bounds, membership latency, clock synchronization
//! precision) are *derived or measured* by this reproduction:
//!
//! * inaccessibility — closed forms from `canely-analysis`
//!   (`14–2880` vs `14–2160` bit-times);
//! * membership latency — measured crash-to-notification latency of
//!   the CANELy stack over a sweep of crash phases ("tens of ms");
//! * clock precision — measured ensemble precision of the CANELy
//!   clock synchronization service ("tens of µs").
//!
//! Run with `cargo run --release -p bench --bin fig11_comparison`.

use bench::measure_detection_latency;
use can_bus::{BusConfig, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, NodeId, NodeSet};
use canely::CanelyConfig;
use canely_analysis::InaccessibilityModel;
use canely_clock::{ensemble_precision, ClockConfig, ClockSync};

fn measured_membership_latency() -> (BitTime, BitTime) {
    let config = CanelyConfig::default();
    let mut worst = BitTime::ZERO;
    let mut best = BitTime::MAX;
    for phase in 0..6u64 {
        let (min, max) = measure_detection_latency(8, &config, phase * 1_700);
        worst = worst.max(max);
        best = best.min(min);
    }
    (best, worst)
}

fn measured_clock_precision() -> u64 {
    let members = NodeSet::first_n(4);
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..4u8 {
        let drift = [100, -80, 40, -100][id as usize];
        let offset = i64::from(id) * 10_000 - 20_000;
        sim.add_node(
            NodeId::new(id),
            ClockSync::new(
                ClockConfig::new(members)
                    .with_drift_ppm(drift)
                    .with_initial_offset(offset),
            ),
        );
    }
    sim.run_until(BitTime::new(2_000_000));
    let clocks: Vec<&ClockSync> = (0..4)
        .map(|id| sim.app::<ClockSync>(NodeId::new(id)))
        .collect();
    ensemble_precision(&clocks, sim.now())
}

fn main() {
    let can = InaccessibilityModel::standard_can();
    let canely = InaccessibilityModel::canely();
    let (best, worst) = measured_membership_latency();
    let precision = measured_clock_precision();

    println!("Fig. 11 — Comparison of TTP, CAN and CANELy");
    println!("(measured rows produced by this reproduction; 1 Mbps ⇒ 1 bit-time = 1 µs)\n");
    let row = |parameter: &str, ttp: &str, can: &str, canely: &str| {
        println!("{parameter:<28} | {ttp:<22} | {can:<26} | {canely}");
    };
    row("Parameter", "TTP", "CAN", "CANELy");
    println!("{}", "-".repeat(110));
    row(
        "Omission handling",
        "masking / diffusion",
        "detection-recovery / retx",
        "both algorithms",
    );
    row(
        "Inaccessibility duration",
        "unknown",
        &format!(
            "{} - {} bit-times",
            can.lower_bound().as_u64(),
            can.upper_bound().as_u64()
        ),
        &format!(
            "{} - {} bit-times",
            canely.lower_bound().as_u64(),
            canely.upper_bound().as_u64()
        ),
    );
    row(
        "Inaccessibility control",
        "not completely addressed",
        "no",
        "yes",
    );
    row("Media redundancy", "no", "no", "yes [17]");
    row("Channel redundancy", "yes", "no", "yes (optional)");
    row(
        "Babbling idiot avoidance",
        "bus guardian",
        "not provided",
        "not provided [2]",
    );
    row(
        "Communications",
        "broadcast",
        "broadcast",
        "broadcast/multicast",
    );
    row(
        "Membership",
        "provided",
        "not provided",
        &format!(
            "measured {:.1} - {:.1} ms latency (tens of ms)",
            best.as_u64() as f64 / 1_000.0,
            worst.as_u64() as f64 / 1_000.0
        ),
    );
    row(
        "Clock synch. precision",
        "in the µs range",
        "-",
        &format!("measured {precision} µs (tens of µs)"),
    );

    println!();
    println!(
        "CANELy membership latency bound (Th + Ttd + dissemination): {:.1} ms",
        (CanelyConfig::default().detection_latency_bound() + BitTime::new(400)).as_u64() as f64
            / 1_000.0
    );
}
