//! Ablation benches for the design choices DESIGN.md calls out.
//!
//! 1. **Implicit heartbeats** (Sec. 6.1/6.3): normal traffic resets
//!    surveillance timers via `can-data.nty`. Ablated: every node must
//!    emit explicit life-signs — bandwidth grows with `n`, not `b`.
//! 2. **Remote-frame clustering for FDA** (Sec. 6.2): identical
//!    failure-signs merge on the wire. Quantified: physical frames per
//!    FDA execution vs cluster size.
//! 3. **Duplicate-suppression bound `j`** in RHA (Fig. 7, line r08):
//!    pending RHV signals are aborted once `j` copies circulate.
//!    Ablated over `j` values: RHV frames per settlement.
//! 4. **Skipping RHA on idle cycles** (Fig. 9, line s24): idle-cycle
//!    suite bandwidth with and without the skip.
//!
//! Run with `cargo run --release -p bench --bin ablations`.

use bench::{pct, Fig10Setup};
use can_bus::{BusConfig, BusStats, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, MsgType, NodeId};
use canely::{CanelyConfig, CanelyStack, TrafficConfig};

/// Ablation 1: implicit heartbeats on/off (idle-cluster bandwidth).
fn implicit_heartbeats() {
    println!("1. Implicit heartbeats (traffic doubles as activity signal)");
    println!(
        "   {:>8} {:>18} {:>18}",
        "n", "with (paper)", "without (ablated)"
    );
    for n in [8u8, 16, 32] {
        let run = |implicit: bool| {
            let tm = BitTime::new(30_000);
            let setup = Fig10Setup {
                nodes: n,
                els_nodes: 0, // every node has traffic
                tm,
            };
            let mut config = setup.stack_config();
            config.implicit_heartbeats = implicit;
            let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
            for id in 0..n {
                let stack = CanelyStack::new(config.clone()).with_traffic(
                    TrafficConfig::periodic(tm / 4, 8)
                        .with_offset(BitTime::new(u64::from(id) * 97 + 11)),
                );
                sim.add_node(NodeId::new(id), stack);
            }
            let from = setup.settled_at();
            let to = from + tm * 8;
            sim.run_until(to + BitTime::new(1_000));
            sim.trace()
                .stats(from, to)
                .utilization_of(&BusStats::MEMBERSHIP_SUITE)
        };
        println!(
            "   {:>8} {:>18} {:>18}",
            n,
            pct(run(true)),
            pct(run(false))
        );
    }
    println!("   -> with implicit heartbeats the suite cost is ~0 for busy nodes;");
    println!("      ablated, every node pays one ELS per heartbeat period.\n");
}

/// Ablation 2: FDA clustering — physical failure-sign frames vs
/// cluster size.
fn fda_clustering() {
    println!("2. FDA remote-frame clustering (wired-AND)");
    println!("   {:>8} {:>22}", "nodes", "failure-sign frames");
    for n in [4u8, 8, 16, 32] {
        let config = CanelyConfig::default();
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        for id in 0..n {
            sim.add_node(NodeId::new(id), CanelyStack::new(config.clone()));
        }
        let crash_at = config.join_wait + config.membership_cycle * 4;
        sim.schedule_crash(NodeId::new(n - 1), crash_at);
        sim.run_until(crash_at + config.membership_cycle * 3);
        let fda_frames = sim
            .trace()
            .iter()
            .filter(|r| r.mid().is_some_and(|m| m.msg_type() == MsgType::Fda))
            .count();
        println!("   {:>8} {:>22}", n, fda_frames);
    }
    println!("   -> without clustering this would grow linearly with n;");
    println!("      the wired-AND keeps it at ~2 frames regardless of group size.\n");
}

/// Ablation 3: RHA duplicate-suppression bound `j`.
fn rha_duplicate_bound() {
    println!("3. RHA duplicate-suppression bound j (Fig. 7, line r08)");
    println!("   {:>8} {:>22}", "j", "RHV frames/settlement");
    for j in [1u32, 2, 4, 8, 32] {
        let mut config = CanelyConfig::default().with_inconsistent_degree(j);
        config.join_wait = BitTime::new(60_000);
        let n = 16u8;
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        for id in 0..n {
            sim.add_node(NodeId::new(id), CanelyStack::new(config.clone()));
        }
        // One late joiner forces one RHA settlement.
        let t0 = config.join_wait + config.membership_cycle * 4;
        sim.add_node_at(NodeId::new(n), CanelyStack::new(config.clone()), t0);
        sim.run_until(t0 + config.membership_cycle * 4);
        let rhv_frames = sim
            .trace()
            .iter()
            .filter(|r| r.start > t0)
            .filter(|r| r.mid().is_some_and(|m| m.msg_type() == MsgType::Rha))
            .count();
        println!("   {:>8} {:>22}", j, rhv_frames);
    }
    println!("   -> small j aborts redundant RHV signals early; very large j");
    println!("      degenerates toward every member transmitting its vector.\n");
}

/// Ablation 4: skipping RHA on idle cycles.
fn idle_cycle_skip() {
    println!("4. Idle-cycle RHA skip (Fig. 9, line s24)");
    // The paper's design: no join/leave pending -> no RHA. The
    // alternative (settle every cycle) is what a naive design would
    // do; we quantify what the skip saves by counting the RHV signals
    // an always-on RHA would cost.
    let tm = BitTime::new(30_000);
    let setup = Fig10Setup {
        nodes: 16,
        els_nodes: 4,
        tm,
    };
    let mut sim = setup.build();
    let from = setup.settled_at();
    let cycles = 8u64;
    let to = from + tm * cycles;
    sim.run_until(to + BitTime::new(1_000));
    let stats = sim.trace().stats(from, to);
    let rha = stats.of_type(MsgType::Rha);
    let suite = stats.utilization_of(&BusStats::MEMBERSHIP_SUITE);
    // An always-on design pays >= j RHV signals per cycle.
    let j = 2u64;
    let rhv_cost = can_types::FrameFormat::Extended.worst_case_bits(8) + 3;
    let hypothetical =
        suite + (j * rhv_cost * cycles) as f64 / (tm.as_u64() * cycles) as f64;
    println!(
        "   idle suite utilization with skip: {} (RHA frames: {})",
        pct(suite),
        rha.frames
    );
    println!(
        "   hypothetical without skip (>= j RHV signals per cycle): {}",
        pct(hypothetical)
    );
    println!("   -> the skip removes all RHA traffic from idle cycles.\n");
}

/// Ablation 5: bounded retransmission (inaccessibility control) —
/// bus occupation of an error burst with and without the retry limit.
fn retry_limit() {
    use can_bus::{FaultEffect, FaultMatcher, ScriptedFault};
    println!("5. Bounded retransmission (inaccessibility control, Fig. 11 row)");
    // A defective transmitter: every life-sign of node 0 errors (bad
    // transceiver). High-priority, so each retry immediately rewins
    // arbitration — the burst occupies the bus back to back.
    let run = |limit: Option<u32>| {
        let mut faults = FaultPlan::none();
        faults.push_scripted(ScriptedFault {
            matcher: FaultMatcher {
                msg_type: Some(MsgType::Els),
                mid_node: Some(NodeId::new(0)),
                not_before: BitTime::new(70_000),
                ..FaultMatcher::default()
            },
            effect: FaultEffect::ConsistentOmission,
            count: 16,
        });
        let mut sim = Simulator::new(BusConfig::default(), faults);
        let config = CanelyConfig::default();
        for id in 0..4u8 {
            sim.add_node(NodeId::new(id), CanelyStack::new(config.clone()));
            if limit.is_some() {
                sim.set_retry_limit(NodeId::new(id), limit);
            }
        }
        sim.run_until(BitTime::new(200_000));
        sim.trace()
            .worst_inaccessibility()
            .map_or(0, |t| t.as_u64())
    };
    let unlimited = run(None);
    let limited = run(Some(4));
    println!("   worst error-burst bus occupation:");
    println!("   {:>28} {:>8} bit-times", "standard CAN (unbounded):", unlimited);
    println!("   {:>28} {:>8} bit-times", "CANELy (retry limit 4):", limited);
    println!("   -> bounding retransmissions caps the inaccessibility an");
    println!("      error burst can inflict (the 2880 -> 2160 improvement).\n");
}

fn main() {
    println!("CANELy design-choice ablations\n");
    implicit_heartbeats();
    fda_clustering();
    rha_duplicate_bound();
    idle_cycle_skip();
    retry_limit();
}
