//! Benchmark harness: scenario builders and measurement helpers that
//! regenerate every table and figure of the paper's evaluation.
//!
//! | Target | Paper artifact | Binary |
//! |---|---|---|
//! | TTP vs CAN attribute table | Fig. 1 | `fig01_ttp_vs_can` |
//! | Bandwidth utilization vs `Tm` | Fig. 10 | `fig10_bandwidth` |
//! | TTP vs CAN vs CANELy table | Fig. 11 | `fig11_comparison` |
//! | Related-work latency comparison | Sec. 6.6 | `sec66_related_latency` |
//! | Design-choice ablations | Sec. 6 design notes | `ablations` |
//!
//! The Criterion benches (`benches/`) measure the protocols and the
//! simulator itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use can_bus::{BusConfig, BusStats, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, NodeId, NodeSet};
use canely::obs::ObsLog;
use canely::{CanelyConfig, CanelyStack, ProtocolEvent, Snapshot, TrafficConfig};

/// The Fig. 10 operating conditions.
#[derive(Debug, Clone, Copy)]
pub struct Fig10Setup {
    /// `n`: total nodes.
    pub nodes: u8,
    /// `b`: nodes relying on explicit life-signs (no traffic).
    pub els_nodes: u8,
    /// `Tm`: membership cycle period.
    pub tm: BitTime,
}

impl Fig10Setup {
    /// The paper's conditions: `n = 32`, `b = 8`.
    pub fn paper(tm: BitTime) -> Self {
        Fig10Setup {
            nodes: 32,
            els_nodes: 8,
            tm,
        }
    }

    /// The CANELy configuration used for bandwidth measurement: the
    /// heartbeat period equals the cycle period, so each of the `b`
    /// silent nodes issues (at most) one life-sign per cycle — the
    /// assumption of the analytic model.
    pub fn stack_config(&self) -> CanelyConfig {
        let mut config = CanelyConfig::default()
            .with_membership_cycle(self.tm)
            .with_heartbeat_period(self.tm);
        // Footnote 9: the join wait must exceed the cycle period.
        config.join_wait = self.tm * 2 + BitTime::new(10_000);
        config
    }

    /// Builds the steady-state cluster: `n` members, of which
    /// `n − b` emit cyclic traffic (implicit heartbeats) and `b` are
    /// silent (explicit life-signs).
    pub fn build(&self) -> Simulator {
        let config = self.stack_config();
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        for id in 0..self.nodes {
            let mut stack = CanelyStack::new(config.clone());
            if id >= self.els_nodes {
                // Cyclic traffic well below the heartbeat period.
                let period = self.tm / 4;
                let offset = BitTime::new(u64::from(id) * 97 + 11);
                stack = stack.with_traffic(
                    TrafficConfig::periodic(period, 8).with_offset(offset),
                );
            }
            sim.add_node(NodeId::new(id), stack);
        }
        sim
    }

    /// Instant by which the cluster is guaranteed settled (view
    /// formed, surveillance running).
    pub fn settled_at(&self) -> BitTime {
        // Join wait plus a few cycles.
        self.stack_config().join_wait + self.tm * 4
    }
}

/// Measured bandwidth of the membership suite, expressed per cycle.
#[derive(Debug, Clone, Copy)]
pub struct MeasuredUtilization {
    /// Steady-state (life-signs only) utilization.
    pub baseline: f64,
    /// Utilization including the episode's extra traffic, charged to a
    /// single cycle — the paper's "period of reference" convention.
    pub with_episode: f64,
}

/// Bit-times consumed by the membership suite inside `[from, to)`.
pub fn suite_busy(stats: &BusStats) -> f64 {
    stats.utilization_of(&BusStats::MEMBERSHIP_SUITE) * stats.window().as_u64() as f64
}

/// Measures the baseline (no membership changes) suite utilization
/// over `cycles` steady-state cycles.
pub fn measure_baseline(setup: &Fig10Setup, cycles: u64) -> f64 {
    let mut sim = setup.build();
    let from = setup.settled_at();
    let to = from + setup.tm * cycles;
    sim.run_until(to + BitTime::new(1_000));
    let stats = sim.trace().stats(from, to);
    stats.utilization_of(&BusStats::MEMBERSHIP_SUITE)
}

/// Measures an episode: `crashes` nodes crash and `joins`/`leaves`
/// requests arrive in the same period of reference. Returns the
/// per-cycle utilization with the episode charged to one cycle.
pub fn measure_episode(
    setup: &Fig10Setup,
    crashes: u8,
    joins: u8,
    leaves: u8,
) -> MeasuredUtilization {
    // Baseline rate first (per bit-time).
    let baseline = measure_baseline(setup, 8);

    let config = setup.stack_config();
    let t0 = setup.settled_at();
    // The cluster, with leave requests scheduled at the episode start
    // for the highest-identifier members.
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..setup.nodes {
        let mut stack = CanelyStack::new(config.clone());
        if id >= setup.els_nodes {
            let period = setup.tm / 4;
            let offset = BitTime::new(u64::from(id) * 97 + 11);
            stack = stack.with_traffic(TrafficConfig::periodic(period, 8).with_offset(offset));
        }
        if id >= setup.nodes - leaves {
            stack = stack.with_leave_at(t0);
        }
        sim.add_node(NodeId::new(id), stack);
    }
    // Joiners power on at the episode start. They carry cyclic
    // traffic so that, once integrated, they do not add life-sign
    // load (the episode cost must be the join settlement itself).
    for k in 0..joins {
        let id = setup.nodes + k;
        assert!((id as usize) < can_types::MAX_NODES, "too many joiners");
        let stack = CanelyStack::new(config.clone()).with_traffic(
            TrafficConfig::periodic(setup.tm / 4, 8)
                .with_offset(BitTime::new(u64::from(id) * 97 + 11)),
        );
        sim.add_node_at(NodeId::new(id), stack, t0);
    }
    for k in 0..crashes {
        // Crash cyclic-traffic members: their loss does not change
        // the life-sign baseline, so the measured extra is the FDA
        // dissemination itself.
        let victim = NodeId::new(setup.els_nodes + k);
        sim.schedule_crash(victim, t0 + BitTime::new(u64::from(k) * 200));
    }

    // Let the whole episode settle (join wait + several cycles).
    let horizon = t0 + config.join_wait + setup.tm * 6;
    sim.run_until(horizon + BitTime::new(1_000));

    // Episode extra = suite busy over the window minus baseline share.
    let stats = sim.trace().stats(t0, horizon);
    let total_busy = suite_busy(&stats);
    let baseline_busy = baseline * stats.window().as_u64() as f64;
    let extra = (total_busy - baseline_busy).max(0.0);
    MeasuredUtilization {
        baseline,
        with_episode: baseline + extra / setup.tm.as_u64() as f64,
    }
}

/// Measured failure detection latency of a CANELy cluster: time from
/// the crash instant to the `FailureNotified` event at each correct
/// node. Returns `(min, max)` across observers, in bit-times.
///
/// Measured through the observability layer: every stack shares an
/// [`ObsLog`], the crash marker is seeded into it, and the latency
/// histogram is derived by [`Snapshot::compute`] — the same pipeline
/// `canelyctl metrics` uses.
pub fn measure_detection_latency(
    nodes: u8,
    config: &CanelyConfig,
    crash_phase: u64,
) -> (BitTime, BitTime) {
    let log = ObsLog::new();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..nodes {
        sim.add_node(
            NodeId::new(id),
            CanelyStack::new(config.clone()).with_obs(log.sink()),
        );
    }
    let crash_at = config.join_wait + config.membership_cycle * 4 + BitTime::new(crash_phase);
    let victim = NodeId::new(nodes - 1);
    sim.schedule_crash(victim, crash_at);
    log.record(crash_at, victim, ProtocolEvent::NodeCrashed);
    sim.run_until(crash_at + config.membership_cycle * 4);
    let snapshot = Snapshot::compute(&log.events(), None);
    let h = &snapshot.detection_latency;
    assert!(!h.is_empty(), "crash of {victim} was never detected");
    (
        BitTime::new(h.min().expect("non-empty")),
        BitTime::new(h.max().expect("non-empty")),
    )
}

/// Convenience: the full member set of a settled CANELy simulation.
pub fn common_view(sim: &Simulator, nodes: u8) -> Option<NodeSet> {
    let mut view = None;
    for id in 0..nodes {
        let v = sim.app::<CanelyStack>(NodeId::new(id)).view();
        match view {
            None => view = Some(v),
            Some(prev) if prev == v => {}
            _ => return None,
        }
    }
    view
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:5.1}%", x * 100.0)
}

/// Formats bit-times as milliseconds at 1 Mbps.
pub fn ms(t: BitTime) -> String {
    format!("{:6.2} ms", t.as_u64() as f64 / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_analytic_ballpark() {
        let setup = Fig10Setup {
            nodes: 8,
            els_nodes: 4,
            tm: BitTime::new(30_000),
        };
        let measured = measure_baseline(&setup, 4);
        // 4 ELS nodes → at most 4 remote frames (~80 bits each) per
        // 30 000-bit cycle ≈ 1.1 %, exact stuffing slightly below.
        assert!(measured > 0.002, "measured {measured}");
        assert!(measured < 0.02, "measured {measured}");
    }

    #[test]
    fn detection_latency_within_bound() {
        let config = CanelyConfig::default();
        let (min, max) = measure_detection_latency(5, &config, 0);
        assert!(min <= max);
        let bound = config.detection_latency_bound() + BitTime::new(1_000);
        assert!(max <= bound, "max {max} exceeds bound {bound}");
    }

    #[test]
    fn fig10_setup_settles_to_common_view() {
        let setup = Fig10Setup {
            nodes: 6,
            els_nodes: 2,
            tm: BitTime::new(30_000),
        };
        let mut sim = setup.build();
        sim.run_until(setup.settled_at());
        let view = common_view(&sim, setup.nodes).expect("views agree");
        assert_eq!(view.len(), 6);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.123), " 12.3%");
        assert_eq!(ms(BitTime::new(30_000)), " 30.00 ms");
    }
}
