//! Verifies the "zero-cost when disabled" property of the
//! observability layer with a counting global allocator: emitting
//! through a disabled [`EventSink`] must not allocate at all, while an
//! enabled sink visibly allocates for the backing log.
//!
//! This test owns the whole process (one `#[test]` per file) so the
//! allocation counter is not disturbed by concurrent tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use can_types::{BitTime, NodeId};
use canely::obs::{Cause, ObsLog};
use canely::{EventSink, ProtocolEvent};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn disabled_sink_is_allocation_free() {
    let disabled = EventSink::disabled();
    assert!(!disabled.is_enabled());

    // The counter is process-global, so a one-shot lazy allocation on
    // the harness thread (output capture, TLS init — showing up only
    // under heavy parallel test load) can land inside the measured
    // window. A path that truly allocates does so on every one of the
    // 300 000 emits, so measuring a few windows and requiring one to
    // be clean keeps the property strict while ignoring that noise.
    let mut disabled_delta = u64::MAX;
    for _attempt in 0..5 {
        let before = allocations();
        for i in 0..100_000u64 {
            // Cause-ID threading and the timer-linking resolution path
            // must stay free as well: the dispatcher stamps an ambient
            // cause around every delivery even when tracing is off.
            disabled.set_cause(Cause::Bus {
                deliver_at: BitTime::new(i),
            });
            disabled.emit(
                BitTime::new(i),
                NodeId::new((i % 4) as u8),
                ProtocolEvent::LifeSignSent,
            );
            disabled.emit(
                BitTime::new(i),
                NodeId::new(0),
                ProtocolEvent::FdaSignReceived {
                    failed: NodeId::new(3),
                    duplicate: false,
                },
            );
            disabled.emit(
                BitTime::new(i),
                NodeId::new(0),
                ProtocolEvent::TimerExpired {
                    timer: canely::obs::ObsTimer::Surveillance(NodeId::new(3)),
                },
            );
            disabled.clear_cause();
        }
        disabled_delta = disabled_delta.min(allocations() - before);
        if disabled_delta == 0 {
            break;
        }
    }
    assert_eq!(
        disabled_delta, 0,
        "disabled sink performed {disabled_delta} allocations"
    );

    // Sanity check that the counter actually observes the enabled
    // path: the same traffic through a live sink must allocate (the
    // log's backing vector grows).
    let log = ObsLog::new();
    let sink = log.sink();
    assert!(sink.is_enabled());
    let before = allocations();
    for i in 0..100_000u64 {
        sink.emit(
            BitTime::new(i),
            NodeId::new((i % 4) as u8),
            ProtocolEvent::LifeSignSent,
        );
    }
    let enabled_delta = allocations() - before;
    assert!(enabled_delta > 0, "counting allocator saw no allocations");
    assert_eq!(log.len(), 100_000);
}
