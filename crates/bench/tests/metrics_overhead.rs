//! Verifies the cost contract of the metrics registry with a counting
//! global allocator: disabled handles must not allocate at all, and —
//! stronger — the *enabled* hot path (counter adds, histogram
//! records) is allocation-free too once the handles exist, so workers
//! can bump freely from the campaign hot loop.
//!
//! This test owns the whole process (one `#[test]` per file) so the
//! allocation counter is not disturbed by concurrent tests.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use canely_metrics::{Registry, Stability};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Measures the allocations of `f` over a few windows and returns the
/// cleanest one: the counter is process-global, so a one-shot lazy
/// allocation elsewhere (TLS init, output capture) can land inside a
/// window, but a path that truly allocates does so in *every* window.
fn best_of_5(mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..5 {
        let before = allocations();
        f();
        best = best.min(allocations() - before);
    }
    best
}

#[test]
fn metric_bumps_never_allocate() {
    // Disabled handles: the whole plane is a branch on a `None`.
    let disabled = Registry::disabled();
    let d_counter = disabled.counter("x_total", "x", Stability::Stable);
    let d_gauge = disabled.gauge("g", "g", Stability::Volatile);
    let d_hist = disabled.histogram("h", "h", Stability::Stable, &[10, 100, 1_000]);
    let clean = best_of_5(|| {
        for i in 0..100_000u64 {
            d_counter.add(i & 1);
            d_gauge.set(i);
            d_hist.record(i);
        }
    });
    assert_eq!(clean, 0, "disabled metric handles must never allocate");
    assert_eq!(d_counter.get(), 0);

    // Enabled handles: registration allocates (cells, the name map),
    // but every subsequent bump is a relaxed atomic — nothing else.
    let enabled = Registry::new();
    let before = allocations();
    let e_counter = enabled.counter("x_total", "x", Stability::Stable);
    let e_gauge = enabled.gauge("g", "g", Stability::Volatile);
    let e_hist = enabled.histogram("h", "h", Stability::Stable, &[10, 100, 1_000]);
    assert!(allocations() > before, "registration allocates the cells");
    let clean = best_of_5(|| {
        for i in 0..100_000u64 {
            e_counter.add(i & 1);
            e_gauge.set(i);
            e_hist.record(i);
        }
    });
    assert_eq!(clean, 0, "the enabled hot path must be allocation-free");
    assert_eq!(e_counter.get(), 5 * 50_000);
    let (_, count, _) = e_hist.snapshot().expect("enabled");
    assert_eq!(count, 5 * 100_000);
}
