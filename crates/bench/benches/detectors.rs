//! Failure-detector backend cost: the `campaign_per_run` measurement
//! of `benches/campaign.rs`, repeated once per pluggable backend over
//! the *same* fault schedule (the detector dimension never enters the
//! campaign schedule key). The spread between rows is therefore pure
//! algorithm cost — extra timer churn, ping round-trips, unconditional
//! heartbeat traffic — feeding the runtime column of the QoS shootout
//! in `docs/DETECTORS.md`. Summarized into `BENCH_detectors.json` by
//! `scripts/bench.sh`.

use can_types::BitTime;
use canely::DetectorKind;
use canely_campaign::{execute_in, CampaignSpec, RunSpec, WorldArena};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// One 4-node, 200 ms, single-crash run — the `campaign_per_run`
/// workload — with the backend swapped in.
fn run_for(kind: DetectorKind) -> RunSpec {
    let spec = CampaignSpec {
        name: "bench-detectors".into(),
        nodes: vec![4],
        seeds: (0, 1),
        crash_budgets: vec![1],
        until: BitTime::new(200_000),
        settle: BitTime::new(100_000),
        detectors: vec![kind],
        ..CampaignSpec::default()
    };
    spec.expand().remove(0)
}

/// Warm-arena per-run cost of each backend (the campaign hot path).
fn bench_detectors_per_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("detectors_per_run");
    group.sample_size(30);
    for kind in DetectorKind::ALL {
        let run = run_for(kind);
        let mut arena = WorldArena::new();
        group.bench_with_input(BenchmarkId::from_parameter(kind), &run, |b, run| {
            b.iter(|| {
                let outcome = execute_in(&mut arena, run, false);
                assert!(outcome.violations.is_empty(), "{kind}");
                outcome.events
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_detectors_per_run);
criterion_main!(benches);
