//! Measures the cost of the observability layer: the same crash
//! scenario runs with tracing disabled (no sink installed) and with a
//! shared `ObsLog` collecting every protocol event. The disabled
//! configuration is the acceptance baseline — `EventSink::emit` must
//! compile down to a branch on `None`.

use can_bus::{BusConfig, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, NodeId};
use canely::obs::ObsLog;
use canely::{CanelyConfig, CanelyStack, ProtocolEvent};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn crash_scenario(n: u8, obs: Option<&ObsLog>) -> Simulator {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..n {
        let mut stack = CanelyStack::new(config.clone());
        if let Some(log) = obs {
            stack = stack.with_obs(log.sink());
        }
        sim.add_node(NodeId::new(id), stack);
    }
    let crash_at = config.join_wait + config.membership_cycle * 2;
    sim.schedule_crash(NodeId::new(n - 1), crash_at);
    if let Some(log) = obs {
        log.record(crash_at, NodeId::new(n - 1), ProtocolEvent::NodeCrashed);
    }
    sim.run_until(crash_at + config.membership_cycle * 2);
    sim
}

/// Full crash-detection episode with and without event collection.
fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(20);
    for &n in &[4u8, 16] {
        group.bench_with_input(BenchmarkId::new("disabled", n), &n, |b, &n| {
            b.iter(|| crash_scenario(n, None));
        });
        group.bench_with_input(BenchmarkId::new("enabled", n), &n, |b, &n| {
            b.iter(|| {
                let log = ObsLog::new();
                let sim = crash_scenario(n, Some(&log));
                assert!(!log.is_empty());
                sim
            });
        });
    }
    group.finish();
}

/// The raw emit path in isolation: a disabled sink versus an enabled
/// one, per million events.
fn bench_emit_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_emit");
    group.sample_size(20);
    group.bench_function("disabled_1m", |b| {
        let sink = canely::EventSink::disabled();
        b.iter(|| {
            for i in 0..1_000_000u64 {
                sink.emit(BitTime::new(i), NodeId::new(0), ProtocolEvent::LifeSignSent);
            }
        });
    });
    group.bench_function("enabled_1m", |b| {
        b.iter(|| {
            let log = ObsLog::new();
            let sink = log.sink();
            for i in 0..1_000_000u64 {
                sink.emit(BitTime::new(i), NodeId::new(0), ProtocolEvent::LifeSignSent);
            }
            log.len()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead, bench_emit_path);
criterion_main!(benches);
