//! The campaign engine's scaling surface, end to end: worker fan-out
//! over a matrix large enough to amortize thread spawn, raw warm-world
//! simulation stepping, and zero-copy trace parsing on a ≥1 MiB
//! document.
//!
//! `scripts/bench.sh` distils this bench into `BENCH_sim.json`;
//! `scripts/verify.sh` gates on the `campaign_scaling` group (8
//! workers must not be slower than 1 on the same matrix).
//!
//! * `campaign_scaling/{1,2,4,8}` — a 64-run matrix (4 nodes, two
//!   fault rates, one crash each, 200 ms horizon) executed at rising
//!   worker counts. Byte-identical output across the group; only the
//!   wall clock may move.
//! * `sim/steps_per_sec` — one warm (arena-recycled) 8-node, 400 ms,
//!   traffic-loaded simulation run per iteration: a fixed number of
//!   simulation steps, so mean time is inverse step throughput.
//! * `trace/parse` — the zero-copy JSONL parser over a generated
//!   crash-episode document of at least 1 MiB.

use can_bus::{BusConfig, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, NodeId};
use canely::obs::ObsLog;
use canely::{CanelyConfig, CanelyStack, ProtocolEvent, TrafficConfig};
use canely_campaign::{execute_in, run_campaign, CampaignSpec, WorldArena};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A 64-run campaign matrix: large enough that per-worker thread
/// spawn and aggregation cost is amortized over real work.
fn scaling_matrix() -> CampaignSpec {
    let spec = CampaignSpec {
        name: "scaling".into(),
        nodes: vec![4],
        seeds: (0, 16),
        consistent_rates: vec![0.0, 0.01],
        crash_budgets: vec![0, 1],
        until: BitTime::new(200_000),
        settle: BitTime::new(100_000),
        ..CampaignSpec::default()
    };
    assert_eq!(spec.run_count(), 64);
    spec
}

fn bench_campaign_scaling(c: &mut Criterion) {
    let spec = scaling_matrix();
    let mut group = c.benchmark_group("campaign_scaling");
    group.sample_size(10);
    for &workers in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let result = run_campaign(&spec, w);
                assert!(result.report.clean());
                result.report.runs
            });
        });
    }
    group.finish();
}

/// One warm-world simulation run per iteration: 8 nodes, periodic
/// application traffic, one crash, 400 ms horizon — a fixed stepping
/// workload through the recycled arena (the campaign hot path).
fn bench_sim_stepping(c: &mut Criterion) {
    let run = CampaignSpec {
        name: "stepping".into(),
        nodes: vec![8],
        seeds: (0, 1),
        crash_budgets: vec![1],
        until: BitTime::new(400_000),
        settle: BitTime::new(200_000),
        ..CampaignSpec::default()
    }
    .expand()
    .remove(0);
    let mut arena = WorldArena::new();
    let mut group = c.benchmark_group("sim");
    group.sample_size(20);
    group.bench_function("steps_per_sec", |b| {
        b.iter(|| {
            let outcome = execute_in(&mut arena, &run, false);
            assert!(outcome.events > 0);
            outcome.events
        });
    });
    group.finish();
}

/// A deterministic crash-episode trace document of at least 1 MiB:
/// 8 traffic-loaded nodes, one crash, 1.5 s horizon.
fn big_trace() -> String {
    let config = CanelyConfig::default();
    let log = ObsLog::new();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..8u8 {
        sim.add_node(
            NodeId::new(id),
            CanelyStack::new(config.clone())
                .with_obs(log.sink())
                .with_traffic(
                    TrafficConfig::periodic(BitTime::new(2_000), 8)
                        .with_offset(BitTime::new(u64::from(id) * 131 + 17)),
                ),
        );
    }
    let victim = NodeId::new(7);
    let crash_at = config.join_wait + config.membership_cycle * 2;
    sim.schedule_crash(victim, crash_at);
    log.record(crash_at, victim, ProtocolEvent::NodeCrashed);
    sim.run_until(BitTime::new(1_500_000));
    let doc = log.export_jsonl(Some(sim.trace()));
    assert!(
        doc.len() >= 1 << 20,
        "trace document too small for the parse bench: {} bytes",
        doc.len()
    );
    doc
}

fn bench_trace_parse(c: &mut Criterion) {
    let doc = big_trace();
    let mut group = c.benchmark_group("trace");
    group.sample_size(30);
    group.bench_function("parse", |b| {
        b.iter(|| canely_trace::TraceModel::parse(&doc).unwrap().lines.len());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_campaign_scaling,
    bench_sim_stepping,
    bench_trace_parse
);
criterion_main!(benches);
