//! Federation engine cost: bridged multi-segment runs simulated and
//! judged per second.
//!
//! Two aspects are measured:
//!
//! * `federation_run` — one complete federated run (8-node segments
//!   in a ring, one scheduled crash, and — for multi-segment shapes —
//!   a gateway crash plus an inter-segment partition window) at 1, 2
//!   and 4 segments. The 1-segment point is the degenerate case that
//!   bypasses every bridge, so the group exposes the marginal cost of
//!   the lockstep pump and the digest/relay traffic.
//! * `federation_export` — the same 4-segment run with full trace
//!   capture: the per-segment logs are merged into one seg-tagged
//!   JSONL document, the input format of `tq`'s segment-qualified
//!   queries.
//! * `federation_failover` — the 4-segment run with a gateway
//!   restart 60 ms after its crash: the full self-healing story
//!   (expulsion, successor election, epoch bump, re-announce,
//!   standby demotion of the returning node) plus the rejoin-latency
//!   oracle pass, priced against the plain gateway-crash run above.

use can_types::BitTime;
use canely_campaign::{execute, CampaignSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A federated matrix of one run: `segments` bridged 8-node segments
/// in a ring with one scheduled crash; multi-segment shapes add one
/// gateway crash and one 20 ms partition window.
fn fed_spec(segments: u8) -> CampaignSpec {
    let federated = segments > 1;
    let spec = CampaignSpec {
        name: "bench-fed".into(),
        nodes: vec![8],
        seeds: (0, 1),
        crash_budgets: vec![1],
        segments: vec![segments],
        gateway_crash_budgets: vec![u32::from(federated)],
        partition_lens: vec![if federated {
            BitTime::new(20_000)
        } else {
            BitTime::ZERO
        }],
        until: BitTime::new(400_000),
        settle: BitTime::new(180_000),
        ..CampaignSpec::default()
    };
    assert_eq!(spec.run_count(), 1);
    spec
}

/// One federated run end to end, at increasing segment counts.
fn bench_federation_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("federation_run");
    group.sample_size(10);
    for &segments in &[1u8, 2, 4] {
        let run = fed_spec(segments).expand().remove(0);
        group.bench_with_input(
            BenchmarkId::from_parameter(segments),
            &run,
            |b, run| {
                b.iter(|| {
                    let outcome = execute(run, false);
                    assert!(outcome.violations.is_empty());
                    outcome.events
                });
            },
        );
    }
    group.finish();
}

/// The 4-segment run with full capture and the merged seg-tagged
/// JSONL export.
fn bench_federation_export(c: &mut Criterion) {
    let run = fed_spec(4).expand().remove(0);
    c.bench_function("federation_export", |b| {
        b.iter(|| {
            let outcome = execute(&run, true);
            outcome.trace_jsonl.expect("capture was requested").len()
        });
    });
}

/// The 4-segment run healing itself: the gateway crash of
/// `fed_spec(4)` plus a 60 ms restart delay, so every iteration pays
/// for the election, the epoch-bumped re-announce, the returning
/// standby's demotion and the rejoin-latency oracle check.
fn bench_federation_failover(c: &mut Criterion) {
    let mut spec = fed_spec(4);
    spec.gateway_restart_delays = vec![BitTime::new(60_000)];
    let run = spec.expand().remove(0);
    assert!(!run
        .federation
        .as_ref()
        .expect("federated")
        .gateway_restarts
        .is_empty());
    c.bench_function("federation_failover", |b| {
        b.iter(|| {
            let outcome = execute(&run, false);
            assert!(outcome.violations.is_empty());
            outcome.events
        });
    });
}

criterion_group!(
    benches,
    bench_federation_run,
    bench_federation_export,
    bench_federation_failover
);
criterion_main!(benches);
