//! Criterion benches of the CANELy protocol suite: how much simulated
//! work each protocol episode costs to execute, and how the simulator
//! scales with cluster size.

use can_bus::{BusConfig, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, NodeId, NodeSet};
use canely::{CanelyConfig, CanelyStack, TrafficConfig};
use canely_baselines::{OsekNode, TtpNode};
use canely_broadcast::{Edcan, Totcan};
use canely_broadcast::common::ScheduledSend;
use can_types::Payload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// One complete FDA episode: bootstrap, crash, agreed detection.
fn bench_fda_episode(c: &mut Criterion) {
    let mut group = c.benchmark_group("fda_episode");
    group.sample_size(20);
    for &n in &[4u8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let config = CanelyConfig::default();
                let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
                for id in 0..n {
                    sim.add_node(NodeId::new(id), CanelyStack::new(config.clone()));
                }
                let crash_at = config.join_wait + config.membership_cycle * 2;
                sim.schedule_crash(NodeId::new(n - 1), crash_at);
                sim.run_until(crash_at + config.membership_cycle * 2);
                assert!(sim
                    .app::<CanelyStack>(NodeId::new(0))
                    .events()
                    .iter()
                    .any(|(_, e)| matches!(e, canely::UpperEvent::FailureNotified(_))));
            });
        });
    }
    group.finish();
}

/// One RHA settlement: a node joins an established cluster.
fn bench_rha_settlement(c: &mut Criterion) {
    let mut group = c.benchmark_group("rha_settlement");
    group.sample_size(20);
    for &n in &[4u8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let config = CanelyConfig::default();
                let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
                for id in 0..n {
                    sim.add_node(NodeId::new(id), CanelyStack::new(config.clone()));
                }
                let t0 = config.join_wait + config.membership_cycle * 2;
                sim.add_node_at(NodeId::new(n), CanelyStack::new(config.clone()), t0);
                sim.run_until(t0 + config.membership_cycle * 3);
                assert!(sim
                    .app::<CanelyStack>(NodeId::new(0))
                    .view()
                    .contains(NodeId::new(n)));
            });
        });
    }
    group.finish();
}

/// Steady-state: one second of simulated time for a busy cluster.
fn bench_steady_state_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("steady_state_1s");
    group.sample_size(10);
    for &n in &[8u8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let config = CanelyConfig::default();
                let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
                for id in 0..n {
                    let stack = CanelyStack::new(config.clone()).with_traffic(
                        TrafficConfig::periodic(BitTime::new(10_000), 8)
                            .with_offset(BitTime::new(u64::from(id) * 131)),
                    );
                    sim.add_node(NodeId::new(id), stack);
                }
                sim.run_until(BitTime::new(1_000_000));
                assert_eq!(sim.alive().len(), n as usize);
            });
        });
    }
    group.finish();
}

/// EDCAN vs TOTCAN: one broadcast to a 16-node group.
fn bench_broadcast_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast");
    group.sample_size(30);
    group.bench_function("edcan_16", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
            sim.add_node(
                NodeId::new(0),
                Edcan::new().with_schedule(vec![ScheduledSend::new(
                    BitTime::new(100),
                    Payload::from_slice(&[1; 8]).expect("8 bytes"),
                )]),
            );
            for id in 1..16u8 {
                sim.add_node(NodeId::new(id), Edcan::new());
            }
            sim.run_until(BitTime::new(20_000));
            assert_eq!(sim.app::<Edcan>(NodeId::new(15)).deliveries().len(), 1);
        });
    });
    group.bench_function("totcan_16", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
            sim.add_node(
                NodeId::new(0),
                Totcan::new(BitTime::new(5_000)).with_schedule(vec![ScheduledSend::new(
                    BitTime::new(100),
                    Payload::from_slice(&[1; 8]).expect("8 bytes"),
                )]),
            );
            for id in 1..16u8 {
                sim.add_node(NodeId::new(id), Totcan::new(BitTime::new(5_000)));
            }
            sim.run_until(BitTime::new(20_000));
            assert_eq!(sim.app::<Totcan>(NodeId::new(15)).deliveries().len(), 1);
        });
    });
    group.finish();
}

/// Baseline protocols: one second of simulated time, 16 nodes.
fn bench_baselines_second(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_1s");
    group.sample_size(10);
    group.bench_function("osek_16", |b| {
        b.iter(|| {
            let config = NodeSet::first_n(16);
            let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
            for id in 0..16u8 {
                sim.add_node(
                    NodeId::new(id),
                    OsekNode::new(BitTime::new(10_000), BitTime::new(60_000), config),
                );
            }
            sim.run_until(BitTime::new(1_000_000));
        });
    });
    group.bench_function("ttp_16", |b| {
        b.iter(|| {
            let schedule = NodeSet::first_n(16);
            let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
            for id in 0..16u8 {
                sim.add_node(NodeId::new(id), TtpNode::new(BitTime::new(500), schedule));
            }
            sim.run_until(BitTime::new(1_000_000));
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fda_episode,
    bench_rha_settlement,
    bench_steady_state_second,
    bench_broadcast_protocols,
    bench_baselines_second,
);
criterion_main!(benches);
