//! Telemetry-plane cost: handle bumps, an instrumented campaign run,
//! and the exposition formats.
//!
//! * `metrics_bump` — one counter add and one histogram record, with
//!   disabled and enabled handles. The disabled points put a number on
//!   the "zero-cost when off" claim (a branch on an `Option`); the
//!   enabled points price the relaxed atomic.
//! * `metrics_run` — one complete campaign run with telemetry off vs
//!   streaming into a live registry (detector counters, step stats,
//!   latency histograms, phase profiler): the end-to-end overhead the
//!   `--progress` path pays per run.
//! * `metrics_exposition` — rendering a populated registry to the
//!   Prometheus text and JSON snapshot formats.

use canely_campaign::{CampaignSpec, RunSpec, WorldArena};
use canely_metrics::{Registry, Stability};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn one_run() -> RunSpec {
    let spec = CampaignSpec {
        name: "bench-metrics".into(),
        seeds: (0, 1),
        crash_budgets: vec![1],
        ..CampaignSpec::default()
    };
    spec.expand().remove(0)
}

/// Handle-level cost, enabled and disabled.
fn bench_bump(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_bump");
    let disabled = Registry::disabled();
    let enabled = Registry::new();
    for (label, reg) in [("disabled", &disabled), ("enabled", &enabled)] {
        let counter = reg.counter("bench_total", "bench", Stability::Stable);
        let hist = reg.histogram("bench_hist", "bench", Stability::Stable, &[10, 100, 1000]);
        group.bench_with_input(BenchmarkId::new("counter", label), &counter, |b, counter| {
            b.iter(|| {
                for i in 0..1024u64 {
                    counter.add(black_box(i & 1));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("histogram", label), &hist, |b, hist| {
            b.iter(|| {
                for i in 0..1024u64 {
                    hist.record(black_box(i));
                }
            });
        });
    }
    group.finish();
}

/// One warm-arena campaign run, telemetry off vs on.
fn bench_instrumented_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("metrics_run");
    group.sample_size(20);
    let run = one_run();
    group.bench_function("off", |b| {
        let mut arena = WorldArena::new();
        b.iter(|| {
            let outcome = canely_campaign::execute_in(&mut arena, &run, false);
            assert!(outcome.violations.is_empty());
            outcome.events
        });
    });
    group.bench_function("on", |b| {
        let registry = Registry::new();
        let mut arena = WorldArena::with_registry(&registry);
        b.iter(|| {
            let outcome = canely_campaign::execute_in(&mut arena, &run, false);
            assert!(outcome.violations.is_empty());
            outcome.events
        });
    });
    group.finish();
}

/// Rendering a realistically populated registry.
fn bench_exposition(c: &mut Criterion) {
    let registry = Registry::new();
    let mut arena = WorldArena::with_registry(&registry);
    let run = one_run();
    let outcome = canely_campaign::execute_in(&mut arena, &run, false);
    assert!(outcome.violations.is_empty());
    let mut group = c.benchmark_group("metrics_exposition");
    group.bench_function("prometheus", |b| {
        b.iter(|| registry.to_prometheus(true).len());
    });
    group.bench_function("json", |b| {
        b.iter(|| registry.to_json(true).len());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bump,
    bench_instrumented_run,
    bench_exposition
);
criterion_main!(benches);
