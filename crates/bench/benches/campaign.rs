//! Campaign engine throughput: complete simulations judged per
//! second, and how that scales with the worker count.
//!
//! Three aspects are measured:
//!
//! * `campaign_workers` — the same matrix executed with 1, 2, 4 and 8
//!   worker threads. The engine's determinism guarantee means the
//!   *output* is identical across this group; only the wall clock may
//!   differ, so the group directly exposes the parallel speed-up. The
//!   matrix size is parameterized (`BENCH_MATRIX_RUNS`, default 64):
//!   small matrices measure spawn overhead, not throughput.
//! * `campaign_per_run` — per-run cost, the honest unit the scaling
//!   numbers divide down to: one run in a cold world (`cold`, pays
//!   construction) and in a recycled arena world (`warm`, the
//!   campaign hot path).
//! * `campaign_oracle` — a single run executed and judged cold,
//!   isolating the simulation + invariant-oracle pipeline from the
//!   fan-out machinery (kept for comparability with older baselines).

use can_types::BitTime;
use canely_campaign::{execute, execute_in, run_campaign, CampaignSpec, WorldArena};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A campaign matrix with exactly `runs` runs (seeds × two fault
/// rates), 4 nodes, 200 ms horizon.
fn matrix(runs: usize) -> CampaignSpec {
    assert!(
        runs >= 2 && runs.is_multiple_of(2),
        "matrix wants an even run count"
    );
    let spec = CampaignSpec {
        name: "bench".into(),
        nodes: vec![4],
        seeds: (0, runs as u64 / 2),
        consistent_rates: vec![0.0, 0.01],
        crash_budgets: vec![1],
        until: BitTime::new(200_000),
        settle: BitTime::new(100_000),
        ..CampaignSpec::default()
    };
    assert_eq!(spec.run_count(), runs);
    spec
}

/// Matrix size under test: `BENCH_MATRIX_RUNS` runs (default 64).
fn matrix_runs() -> usize {
    std::env::var("BENCH_MATRIX_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// The same campaign at increasing worker counts.
fn bench_campaign_workers(c: &mut Criterion) {
    let spec = matrix(matrix_runs());
    let mut group = c.benchmark_group("campaign_workers");
    group.sample_size(10);
    for &workers in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let result = run_campaign(&spec, w);
                assert!(result.report.clean());
                result.report.runs
            });
        });
    }
    group.finish();
}

/// Per-run cost: one simulation + oracle judgement, cold (fresh
/// world, the old execution model) vs warm (arena-recycled world, the
/// campaign hot path).
fn bench_per_run(c: &mut Criterion) {
    let run = matrix(matrix_runs()).expand().remove(0);
    let mut group = c.benchmark_group("campaign_per_run");
    group.sample_size(30);
    group.bench_function("cold", |b| {
        b.iter(|| {
            let outcome = execute(&run, false);
            assert!(outcome.violations.is_empty());
            outcome.events
        });
    });
    let mut arena = WorldArena::new();
    group.bench_function("warm", |b| {
        b.iter(|| {
            let outcome = execute_in(&mut arena, &run, false);
            assert!(outcome.violations.is_empty());
            outcome.events
        });
    });
    group.finish();
}

/// One simulation + oracle judgement, the unit of campaign work.
fn bench_single_run_with_oracle(c: &mut Criterion) {
    let run = matrix(16).expand().remove(0);
    c.bench_function("campaign_oracle", |b| {
        b.iter(|| {
            let outcome = execute(&run, false);
            assert!(outcome.violations.is_empty());
            outcome.events
        });
    });
}

criterion_group!(
    benches,
    bench_campaign_workers,
    bench_per_run,
    bench_single_run_with_oracle
);
criterion_main!(benches);
