//! Campaign engine throughput: complete simulations judged per
//! second, and how that scales with the worker count.
//!
//! Two aspects are measured:
//!
//! * `campaign_workers` — the same 16-run matrix executed with 1, 2, 4
//!   and 8 worker threads. The engine's determinism guarantee means
//!   the *output* is identical across this group; only the wall clock
//!   may differ, so the group directly exposes the parallel speed-up.
//! * `campaign_oracle` — a single run executed and judged, isolating
//!   the per-run cost of the simulation + invariant oracle pipeline
//!   from the fan-out machinery.

use can_types::BitTime;
use canely_campaign::{execute, run_campaign, CampaignSpec};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn matrix() -> CampaignSpec {
    CampaignSpec {
        name: "bench".into(),
        nodes: vec![4],
        seeds: (0, 8),
        consistent_rates: vec![0.0, 0.01],
        crash_budgets: vec![1],
        until: BitTime::new(200_000),
        settle: BitTime::new(100_000),
        ..CampaignSpec::default()
    }
}

/// The same 16-run campaign at increasing worker counts.
fn bench_campaign_workers(c: &mut Criterion) {
    let spec = matrix();
    assert_eq!(spec.run_count(), 16);
    let mut group = c.benchmark_group("campaign_workers");
    group.sample_size(10);
    for &workers in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let result = run_campaign(&spec, w);
                assert!(result.report.clean());
                result.report.runs
            });
        });
    }
    group.finish();
}

/// One simulation + oracle judgement, the unit of campaign work.
fn bench_single_run_with_oracle(c: &mut Criterion) {
    let run = matrix().expand().remove(0);
    c.bench_function("campaign_oracle", |b| {
        b.iter(|| {
            let outcome = execute(&run, false);
            assert!(outcome.violations.is_empty());
            outcome.events
        });
    });
}

criterion_group!(benches, bench_campaign_workers, bench_single_run_with_oracle);
criterion_main!(benches);
