//! Trace-analysis pipeline cost: parsing a JSONL trace document into
//! the causal model, reconstructing a suspicion's causal chain,
//! decomposing detections into phase latencies, and exporting the
//! Chrome trace-event form.
//!
//! The input document is a real crash episode (4 nodes, one crash,
//! 500 ms horizon) regenerated deterministically at bench start, so
//! the numbers track the exporter and analyzer together.

use can_bus::{BusConfig, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, NodeId};
use canely::obs::ObsLog;
use canely::{CanelyConfig, CanelyStack, ProtocolEvent};
use canely_trace::{chain_for, chrome_trace, PhaseProfile, TraceModel};
use criterion::{criterion_group, criterion_main, Criterion};

/// A deterministic crash-episode trace document.
fn crash_trace() -> (String, u8) {
    let config = CanelyConfig::default();
    let log = ObsLog::new();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..4u8 {
        sim.add_node(
            NodeId::new(id),
            CanelyStack::new(config.clone()).with_obs(log.sink()),
        );
    }
    let victim = NodeId::new(3);
    let crash_at = config.join_wait + config.membership_cycle * 2;
    sim.schedule_crash(victim, crash_at);
    log.record(crash_at, victim, ProtocolEvent::NodeCrashed);
    sim.run_until(BitTime::new(500_000));
    (log.export_jsonl(Some(sim.trace())), victim.as_u8())
}

fn bench_trace_pipeline(c: &mut Criterion) {
    let (doc, victim) = crash_trace();
    let model = TraceModel::parse(&doc).expect("own export parses");
    assert!(
        chain_for(&model, victim, None).is_some_and(|chain| chain.complete),
        "bench trace must contain a complete causal chain"
    );

    let mut group = c.benchmark_group("trace");
    group.sample_size(30);
    group.bench_function("parse", |b| {
        b.iter(|| TraceModel::parse(&doc).unwrap().lines.len());
    });
    group.bench_function("chain", |b| {
        b.iter(|| chain_for(&model, victim, None).unwrap().steps.len());
    });
    group.bench_function("phases", |b| {
        b.iter(|| PhaseProfile::of(&model).detections.len());
    });
    group.bench_function("chrome", |b| {
        b.iter(|| chrome_trace(&model).len());
    });
    group.bench_function("reexport", |b| {
        b.iter(|| model.to_jsonl().len());
    });
    group.finish();
}

criterion_group!(benches, bench_trace_pipeline);
criterion_main!(benches);
