//! Criterion benches of the substrate itself: wire encoding, fault
//! injection and raw bus transaction throughput.

use can_bus::{BusConfig, FaultPlan, Medium};
use can_types::wire::exact_frame_bits;
use can_types::{BitTime, CanId, Frame, Mid, MsgType, NodeId, NodeSet, Payload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Exact bit-stream construction (CRC-15 + stuffing) per payload size.
fn bench_wire_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_exact_bits");
    for &len in &[0usize, 4, 8] {
        let data = vec![0xA5u8; len];
        let frame = Frame::data(
            Mid::new(MsgType::AppData, 0x55, NodeId::new(3)),
            Payload::from_slice(&data).expect("bounded"),
        );
        group.bench_with_input(BenchmarkId::from_parameter(len), &frame, |b, frame| {
            b.iter(|| exact_frame_bits(black_box(frame)));
        });
    }
    group.finish();
}

/// Raw medium throughput: resolve transactions back to back.
fn bench_medium_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("medium_resolve");
    group.sample_size(30);
    for &contenders in &[1u8, 8, 32] {
        group.bench_with_input(
            BenchmarkId::from_parameter(contenders),
            &contenders,
            |b, &contenders| {
                b.iter(|| {
                    let mut medium = Medium::new(BusConfig::default());
                    let mut faults = FaultPlan::none();
                    let alive = NodeSet::first_n(64);
                    let mut now = BitTime::ZERO;
                    for round in 0..100u16 {
                        for node in 0..contenders {
                            medium.offer(
                                now,
                                NodeId::new(node),
                                Frame::data(
                                    Mid::new(MsgType::AppData, round, NodeId::new(node)),
                                    Payload::EMPTY,
                                ),
                            );
                        }
                        while let Some(tx) = medium.resolve(now, alive, &mut faults) {
                            now = tx.bus_free;
                        }
                    }
                    black_box(now)
                });
            },
        );
    }
    group.finish();
}

/// Fault-plan decision throughput with stochastic rates armed.
fn bench_fault_decisions(c: &mut Criterion) {
    c.bench_function("fault_decide_1k", |b| {
        let frame = Frame::remote(Mid::new(MsgType::Els, 0, NodeId::new(1)));
        b.iter(|| {
            let mut plan = can_bus::FaultPlan::seeded(7)
                .with_consistent_rate(0.05)
                .with_inconsistent_rate(0.01);
            let mut delivered = 0u32;
            for i in 0..1_000u64 {
                let attempt = can_bus::fault::TxAttempt {
                    now: BitTime::new(i * 100),
                    frame: &frame,
                    transmitters: NodeSet::singleton(NodeId::new(1)),
                    listeners: NodeSet::first_n(16) - NodeSet::singleton(NodeId::new(1)),
                    attempt: 0,
                };
                if plan.decide(&attempt) == can_bus::fault::Disposition::Deliver {
                    delivered += 1;
                }
            }
            black_box(delivered)
        });
    });
}

/// CAN identifier arbitration (min-scan) cost.
fn bench_arbitration(c: &mut Criterion) {
    c.bench_function("arbitration_64", |b| {
        let ids: Vec<CanId> = (0..64u32).rev().map(|i| CanId::new(i * 1_000)).collect();
        b.iter(|| {
            let mut winner = ids[0];
            for &id in &ids {
                if id.beats(winner) {
                    winner = id;
                }
            }
            black_box(winner)
        });
    });
}

criterion_group!(
    benches,
    bench_wire_encoding,
    bench_medium_throughput,
    bench_fault_decisions,
    bench_arbitration,
);
criterion_main!(benches);
