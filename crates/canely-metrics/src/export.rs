//! One-shot exposition of a [`Registry`]: Prometheus text format and
//! a JSON snapshot. Both render metrics in name order, so two
//! registries holding the same values export byte-identical documents
//! — the property the telemetry-determinism tests pin.

use crate::registry::{Entry, Registry, Value};

/// Splits `name{label="value"}` into the base name and the label
/// suffix (empty when unlabelled).
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(idx) => (&name[..idx], &name[idx..]),
        None => (name, ""),
    }
}

impl Registry {
    /// Renders the Prometheus text exposition format. `HELP`/`TYPE`
    /// headers are emitted once per base name (label-suffixed series
    /// share them); histograms expand to cumulative `_bucket{le=..}`
    /// series plus `_sum` and `_count`. With `include_volatile` false
    /// only [`crate::Stability::Stable`] metrics appear, making the
    /// output deterministic for a given simulation workload.
    pub fn to_prometheus(&self, include_volatile: bool) -> String {
        let mut out = String::new();
        let mut last_base = String::new();
        self.for_each(|name, entry| {
            if !include_volatile && entry.stability == crate::Stability::Volatile {
                return;
            }
            let (base, labels) = split_labels(name);
            if base != last_base {
                let kind = match entry.value {
                    Value::Counter(_) => "counter",
                    Value::Gauge(_) => "gauge",
                    Value::Histogram(_) => "histogram",
                };
                out.push_str(&format!("# HELP {base} {}\n", entry.help));
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                last_base = base.to_string();
            }
            render_prom_value(&mut out, base, labels, entry);
        });
        out
    }

    /// Renders a JSON snapshot: one object per metric keyed by full
    /// name, carrying kind, help, stability and value. Name-sorted,
    /// integer-only — byte-deterministic for equal registry contents.
    pub fn to_json(&self, include_volatile: bool) -> String {
        let mut out = String::from("{\"metrics\":[");
        let mut first = true;
        self.for_each(|name, entry| {
            if !include_volatile && entry.stability == crate::Stability::Volatile {
                return;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let stability = match entry.stability {
                crate::Stability::Stable => "stable",
                crate::Stability::Volatile => "volatile",
            };
            match &entry.value {
                Value::Counter(cell) => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"kind\":\"counter\",\"stability\":\"{stability}\",\"value\":{}}}",
                    cell.get()
                )),
                Value::Gauge(cell) => out.push_str(&format!(
                    "{{\"name\":\"{name}\",\"kind\":\"gauge\",\"stability\":\"{stability}\",\"value\":{}}}",
                    cell.get()
                )),
                Value::Histogram(cell) => {
                    let (buckets, count, sum) = cell.snapshot();
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"kind\":\"histogram\",\"stability\":\"{stability}\",\"bounds\":["
                    ));
                    for (i, b) in cell.bounds().iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&b.to_string());
                    }
                    out.push_str("],\"buckets\":[");
                    for (i, b) in buckets.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&b.to_string());
                    }
                    out.push_str(&format!("],\"count\":{count},\"sum\":{sum}}}"));
                }
            }
        });
        out.push_str("]}");
        out
    }
}

fn render_prom_value(out: &mut String, base: &str, labels: &str, entry: &Entry) {
    match &entry.value {
        Value::Counter(cell) | Value::Gauge(cell) => {
            out.push_str(&format!("{base}{labels} {}\n", cell.get()));
        }
        Value::Histogram(cell) => {
            let (buckets, count, sum) = cell.snapshot();
            // `labels` is either empty or `{k="v"}`; splice `le` in.
            let label_body = labels
                .strip_prefix('{')
                .and_then(|s| s.strip_suffix('}'))
                .unwrap_or("");
            let mut cumulative = 0u64;
            for (i, bound) in cell.bounds().iter().enumerate() {
                cumulative += buckets[i];
                if label_body.is_empty() {
                    out.push_str(&format!("{base}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
                } else {
                    out.push_str(&format!(
                        "{base}_bucket{{{label_body},le=\"{bound}\"}} {cumulative}\n"
                    ));
                }
            }
            cumulative += buckets[cell.bounds().len()];
            if label_body.is_empty() {
                out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
            } else {
                out.push_str(&format!(
                    "{base}_bucket{{{label_body},le=\"+Inf\"}} {cumulative}\n"
                ));
            }
            out.push_str(&format!("{base}_sum{labels} {sum}\n"));
            out.push_str(&format!("{base}_count{labels} {count}\n"));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Registry, Stability};

    fn sample() -> Registry {
        let reg = Registry::new();
        reg.counter("canely_runs_total", "Completed runs", Stability::Stable)
            .add(64);
        reg.counter(
            "canely_phase_nanos_total{phase=\"sched\"}",
            "Per-phase wall nanos",
            Stability::Volatile,
        )
        .add(123);
        reg.counter(
            "canely_phase_nanos_total{phase=\"timer\"}",
            "Per-phase wall nanos",
            Stability::Volatile,
        )
        .add(456);
        reg.gauge("canely_progress_pct", "Progress", Stability::Volatile)
            .set(50);
        let h = reg.histogram(
            "canely_latency_bittimes",
            "Detection latency",
            Stability::Stable,
            &[10, 100],
        );
        h.record(5);
        h.record(50);
        h.record(500);
        reg
    }

    #[test]
    fn prometheus_shape() {
        let text = sample().to_prometheus(true);
        assert!(text.contains("# HELP canely_runs_total Completed runs"));
        assert!(text.contains("# TYPE canely_runs_total counter"));
        assert!(text.contains("canely_runs_total 64"));
        assert!(text.contains("canely_phase_nanos_total{phase=\"sched\"} 123"));
        assert!(text.contains("canely_latency_bittimes_bucket{le=\"10\"} 1"));
        assert!(text.contains("canely_latency_bittimes_bucket{le=\"100\"} 2"));
        assert!(text.contains("canely_latency_bittimes_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("canely_latency_bittimes_sum 555"));
        assert!(text.contains("canely_latency_bittimes_count 3"));
        // HELP/TYPE emitted once for the labelled family.
        assert_eq!(text.matches("# TYPE canely_phase_nanos_total").count(), 1);
    }

    #[test]
    fn volatile_metrics_are_excluded_from_stable_exports() {
        let text = sample().to_prometheus(false);
        assert!(!text.contains("phase_nanos"));
        assert!(!text.contains("progress_pct"));
        assert!(text.contains("canely_runs_total 64"));
        let json = sample().to_json(false);
        assert!(!json.contains("phase_nanos"));
        assert!(json.contains("\"canely_runs_total\""));
    }

    #[test]
    fn exports_are_deterministic_across_equal_registries() {
        let a = sample();
        let b = sample();
        assert_eq!(a.to_prometheus(true), b.to_prometheus(true));
        assert_eq!(a.to_json(true), b.to_json(true));
    }

    #[test]
    fn json_histogram_shape() {
        let json = sample().to_json(true);
        assert!(json.contains(
            "{\"name\":\"canely_latency_bittimes\",\"kind\":\"histogram\",\"stability\":\"stable\",\"bounds\":[10,100],\"buckets\":[1,1,1],\"count\":3,\"sum\":555}"
        ));
    }
}
