//! The lock-free metric registry and its handle types.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An [`AtomicU64`] padded to a cache line so adjacent hot counters
/// never false-share. 64 bytes covers every target this workspace
/// builds for.
#[repr(align(64))]
#[derive(Debug, Default)]
pub struct PaddedAtomicU64(AtomicU64);

impl PaddedAtomicU64 {
    /// Relaxed add.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Relaxed store.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Relaxed load.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Whether a metric's value is reproducible from the simulation alone.
///
/// Stable metrics are commutative sums of simulation-deterministic
/// quantities: any interleaving of workers lands on the same total, so
/// the stable export is byte-identical across worker counts. Volatile
/// metrics are wall-clock-derived (phase nanos, occupancy) and are
/// excluded from deterministic exports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stability {
    /// Simulation-deterministic; included in deterministic exports.
    Stable,
    /// Wall-clock-derived; excluded unless explicitly requested.
    Volatile,
}

/// A fixed-bucket integer histogram cell: cumulative-style buckets
/// with upper bounds `bounds[i]` plus an implicit `+Inf` bucket, a
/// total count and a sum. All fields are padded atomics — concurrent
/// `record`s from many workers never contend on a shared line beyond
/// the cell itself.
#[derive(Debug)]
pub struct HistCell {
    bounds: Box<[u64]>,
    /// `bounds.len() + 1` buckets; the last is the overflow (+Inf).
    buckets: Box<[PaddedAtomicU64]>,
    count: PaddedAtomicU64,
    sum: PaddedAtomicU64,
}

impl HistCell {
    fn new(bounds: &[u64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| PaddedAtomicU64::default());
        HistCell {
            bounds: bounds.into(),
            buckets: buckets.collect(),
            count: PaddedAtomicU64::default(),
            sum: PaddedAtomicU64::default(),
        }
    }

    /// Records one observation (non-cumulative bucket increment; the
    /// exporter accumulates to Prometheus' cumulative `le` form).
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.buckets[idx].add(1);
        self.count.add(1);
        self.sum.add(value);
    }

    /// The configured upper bounds (exclusive of the implicit +Inf).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Snapshot: per-bucket (non-cumulative) counts, total count, sum.
    pub fn snapshot(&self) -> (Vec<u64>, u64, u64) {
        let buckets = self.buckets.iter().map(PaddedAtomicU64::get).collect();
        (buckets, self.count.get(), self.sum.get())
    }
}

/// A monotonically increasing counter handle. `Default` is the
/// disabled handle: every operation is a no-op costing one branch.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<PaddedAtomicU64>>,
}

impl Counter {
    /// Adds `delta` (no-op when disabled).
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.cell {
            cell.add(delta);
        }
    }

    /// Adds one (no-op when disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when disabled).
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.get())
    }

    /// Whether this handle is wired to a registry.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.cell.is_some()
    }
}

/// A gauge handle: a value that can move both ways. `Default` is the
/// disabled handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<PaddedAtomicU64>>,
}

impl Gauge {
    /// Sets the gauge (no-op when disabled).
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.set(value);
        }
    }

    /// Adds `delta` (no-op when disabled).
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(cell) = &self.cell {
            cell.add(delta);
        }
    }

    /// Current value (0 when disabled).
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.get())
    }
}

/// A histogram handle. `Default` is the disabled handle.
#[derive(Debug, Clone, Default)]
pub struct Hist {
    cell: Option<Arc<HistCell>>,
}

impl Hist {
    /// Records one observation (no-op when disabled).
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.record(value);
        }
    }

    /// Snapshot of (buckets, count, sum); empty when disabled.
    pub fn snapshot(&self) -> Option<(Vec<u64>, u64, u64)> {
        self.cell.as_ref().map(|c| c.snapshot())
    }
}

/// One registered metric: help text, stability class and the shared
/// value cell.
pub(crate) struct Entry {
    pub(crate) help: &'static str,
    pub(crate) stability: Stability,
    pub(crate) value: Value,
}

pub(crate) enum Value {
    Counter(Arc<PaddedAtomicU64>),
    Gauge(Arc<PaddedAtomicU64>),
    Histogram(Arc<HistCell>),
}

struct Inner {
    metrics: Mutex<BTreeMap<String, Entry>>,
}

/// The metric registry. Cloning is cheap (an `Arc`); the disabled
/// registry hands out disabled handles, so a single code path serves
/// both the instrumented and the zero-cost configuration.
///
/// Registration is idempotent: registering the same name twice
/// returns a handle onto the same cell (a kind or stability mismatch
/// panics — that is a programming error, not an operational one).
/// Names follow the Prometheus data model, with an optional
/// `{label="value"}` suffix for families like
/// `canely_sim_phase_nanos_total{phase="sched"}`.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl Registry {
    /// An enabled, empty registry.
    pub fn new() -> Self {
        Registry {
            inner: Some(Arc::new(Inner {
                metrics: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// The disabled registry: hands out disabled handles.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Registers (or re-attaches to) a counter.
    pub fn counter(&self, name: &str, help: &'static str, stability: Stability) -> Counter {
        let Some(inner) = &self.inner else {
            return Counter::default();
        };
        let mut metrics = inner.metrics.lock().expect("metrics registry poisoned");
        let entry = metrics.entry(name.to_string()).or_insert_with(|| Entry {
            help,
            stability,
            value: Value::Counter(Arc::new(PaddedAtomicU64::default())),
        });
        assert_eq!(entry.stability, stability, "stability mismatch for {name}");
        match &entry.value {
            Value::Counter(cell) => Counter {
                cell: Some(Arc::clone(cell)),
            },
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Registers (or re-attaches to) a gauge.
    pub fn gauge(&self, name: &str, help: &'static str, stability: Stability) -> Gauge {
        let Some(inner) = &self.inner else {
            return Gauge::default();
        };
        let mut metrics = inner.metrics.lock().expect("metrics registry poisoned");
        let entry = metrics.entry(name.to_string()).or_insert_with(|| Entry {
            help,
            stability,
            value: Value::Gauge(Arc::new(PaddedAtomicU64::default())),
        });
        assert_eq!(entry.stability, stability, "stability mismatch for {name}");
        match &entry.value {
            Value::Gauge(cell) => Gauge {
                cell: Some(Arc::clone(cell)),
            },
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Registers (or re-attaches to) a fixed-bucket histogram. The
    /// bounds of an existing registration win; a bounds mismatch
    /// panics.
    pub fn histogram(
        &self,
        name: &str,
        help: &'static str,
        stability: Stability,
        bounds: &[u64],
    ) -> Hist {
        let Some(inner) = &self.inner else {
            return Hist::default();
        };
        let mut metrics = inner.metrics.lock().expect("metrics registry poisoned");
        let entry = metrics.entry(name.to_string()).or_insert_with(|| Entry {
            help,
            stability,
            value: Value::Histogram(Arc::new(HistCell::new(bounds))),
        });
        assert_eq!(entry.stability, stability, "stability mismatch for {name}");
        match &entry.value {
            Value::Histogram(cell) => {
                assert_eq!(cell.bounds(), bounds, "bucket bounds mismatch for {name}");
                Hist {
                    cell: Some(Arc::clone(cell)),
                }
            }
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Runs `f` over every metric in name order.
    pub(crate) fn for_each(&self, mut f: impl FnMut(&str, &Entry)) {
        if let Some(inner) = &self.inner {
            let metrics = inner.metrics.lock().expect("metrics registry poisoned");
            for (name, entry) in metrics.iter() {
                f(name, entry);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let reg = Registry::disabled();
        let c = reg.counter("x_total", "x", Stability::Stable);
        let g = reg.gauge("g", "g", Stability::Stable);
        let h = reg.histogram("h", "h", Stability::Stable, &[1, 2]);
        c.inc();
        g.set(7);
        h.record(3);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert!(h.snapshot().is_none());
        assert!(!c.enabled());
        assert!(!reg.enabled());
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let reg = Registry::new();
        let a = reg.counter("runs_total", "runs", Stability::Stable);
        let b = reg.counter("runs_total", "runs", Stability::Stable);
        a.add(3);
        b.inc();
        assert_eq!(a.get(), 4);
        assert_eq!(b.get(), 4);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("m", "m", Stability::Stable);
        reg.gauge("m", "m", Stability::Stable);
    }

    #[test]
    fn histogram_buckets_partition_correctly() {
        let reg = Registry::new();
        let h = reg.histogram("lat", "lat", Stability::Stable, &[10, 100]);
        h.record(5); // bucket 0 (<= 10)
        h.record(10); // bucket 0 (le is inclusive)
        h.record(11); // bucket 1 (<= 100)
        h.record(1000); // overflow
        let (buckets, count, sum) = h.snapshot().unwrap();
        assert_eq!(buckets, vec![2, 1, 1]);
        assert_eq!(count, 4);
        assert_eq!(sum, 5 + 10 + 11 + 1000);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("inflight", "in flight", Stability::Volatile);
        g.set(5);
        g.add(2);
        assert_eq!(g.get(), 7);
        g.set(0);
        assert_eq!(g.get(), 0);
    }
}
