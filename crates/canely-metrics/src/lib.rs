//! Live telemetry plane for the CANELy reproduction.
//!
//! Everything built before this crate explains a run *after* it ends:
//! the JSONL trace, `tq`, campaign reports. This crate is the
//! while-it-runs counterpart — a lock-free [`Registry`] of counters,
//! gauges and fixed-bucket integer histograms that the simulator step
//! loop, the campaign worker pool, the federation bridge pump and the
//! failure-detector backends all feed, plus a [`PhaseProfiler`] that
//! attributes wall time to named phases of a hot loop.
//!
//! # Design contract
//!
//! * **Zero-cost when disabled.** Every handle ([`Counter`],
//!   [`Gauge`], [`Hist`]) is an `Option<Arc<..>>` internally; the
//!   disabled default is `None`, so the hot-path cost is one branch
//!   and no allocation — the same discipline as `core::obs`'s
//!   `EventSink`. `bench/tests/metrics_overhead.rs` pins this with an
//!   allocation-counting gate.
//! * **Lock-free hot path.** Updates are relaxed atomic ops on
//!   cache-line-padded cells ([64-byte `#[repr(align(64))]`]); the
//!   only mutex guards *registration*, which happens once per metric
//!   at setup time.
//! * **Deterministic exports.** Metrics are either
//!   [`Stability::Stable`] (derived purely from simulation state —
//!   identical for a given spec regardless of worker count or wall
//!   clock) or [`Stability::Volatile`] (wall-clock-derived: phase
//!   nanos, occupancy). Exports can exclude volatile metrics, which
//!   makes the stable subset byte-identical across worker counts —
//!   pinned by `tests/tests/telemetry.rs`.
//!
//! See `docs/METRICS.md` for the registry contract, the metric-name
//! inventory and the exposition formats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod profiler;
mod registry;

pub use profiler::{PhaseProfiler, PhaseReport};
pub use registry::{Counter, Gauge, Hist, HistCell, PaddedAtomicU64, Registry, Stability};
