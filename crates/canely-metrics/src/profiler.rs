//! A switch-based phase profiler for hot loops.
//!
//! The profiled loop calls [`PhaseProfiler::enter`] at each phase
//! transition; the profiler reads the monotonic clock **once** per
//! transition and attributes the elapsed delta to the phase being
//! left. Because every instant between the first `enter` and the
//! final [`PhaseProfiler::pause`] belongs to exactly one phase, the
//! per-phase totals structurally account for ~100% of the loop's wall
//! time — which is what lets the campaign-level report meet the
//! "≥ 90% of simulator wall time attributed" acceptance bar.
//!
//! Disabled profilers (the default) skip the clock read entirely: the
//! hot-path cost is one branch, no allocation.

use std::time::Instant;

/// Attributes wall time to a fixed set of named phases.
#[derive(Debug, Default)]
pub struct PhaseProfiler {
    enabled: bool,
    names: &'static [&'static str],
    nanos: Vec<u64>,
    entries: Vec<u64>,
    /// The open span: phase index and when it was entered.
    span: Option<(usize, Instant)>,
}

impl PhaseProfiler {
    /// A profiler over `names`, initially disabled.
    pub fn new(names: &'static [&'static str]) -> Self {
        PhaseProfiler {
            enabled: false,
            names,
            nanos: vec![0; names.len()],
            entries: vec![0; names.len()],
            span: None,
        }
    }

    /// Enables or disables profiling. Disabling closes any open span.
    pub fn set_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.pause();
        }
        self.enabled = enabled;
        if self.nanos.len() != self.names.len() {
            self.nanos = vec![0; self.names.len()];
            self.entries = vec![0; self.names.len()];
        }
    }

    /// Whether the profiler is recording.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Marks a transition into `phase` (an index into `names`). The
    /// time since the previous transition is attributed to the phase
    /// being left. One clock read per call; no-op when disabled.
    #[inline]
    pub fn enter(&mut self, phase: usize) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        if let Some((prev, since)) = self.span {
            self.nanos[prev] += now.duration_since(since).as_nanos() as u64;
        }
        self.entries[phase] += 1;
        self.span = Some((phase, now));
    }

    /// Closes the open span (attributing its time) without starting a
    /// new one. Call at loop exit so idle time between profiled
    /// sections is not attributed to the last phase.
    #[inline]
    pub fn pause(&mut self) {
        if let Some((prev, since)) = self.span.take() {
            self.nanos[prev] += since.elapsed().as_nanos() as u64;
        }
    }

    /// Drains the accumulated totals into a [`PhaseReport`], resetting
    /// the profiler (the enabled flag is kept).
    pub fn take(&mut self) -> PhaseReport {
        self.pause();
        PhaseReport {
            names: self.names,
            nanos: std::mem::replace(&mut self.nanos, vec![0; self.names.len()]),
            entries: std::mem::replace(&mut self.entries, vec![0; self.names.len()]),
        }
    }
}

/// Per-phase wall-time totals drained from a [`PhaseProfiler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseReport {
    names: &'static [&'static str],
    nanos: Vec<u64>,
    entries: Vec<u64>,
}

impl PhaseReport {
    /// The phase names.
    pub fn names(&self) -> &'static [&'static str] {
        self.names
    }

    /// Nanoseconds attributed to each phase, index-aligned with
    /// [`PhaseReport::names`].
    pub fn nanos(&self) -> &[u64] {
        &self.nanos
    }

    /// Transition counts per phase, index-aligned with names.
    pub fn entries(&self) -> &[u64] {
        &self.entries
    }

    /// Total attributed nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Merges another report (same phase table) into this one.
    pub fn merge(&mut self, other: &PhaseReport) {
        assert_eq!(self.names, other.names, "phase tables differ");
        for (a, b) in self.nanos.iter_mut().zip(&other.nanos) {
            *a += b;
        }
        for (a, b) in self.entries.iter_mut().zip(&other.entries) {
            *a += b;
        }
    }

    /// Renders the per-phase table, widest share first:
    ///
    /// ```text
    /// phase                 time        share   entries
    /// bus-arbitration       1.234 ms    45.6%   12345
    /// ```
    pub fn render(&self) -> String {
        let total = self.total_nanos().max(1);
        let mut rows: Vec<(usize, u64)> = self.nanos.iter().copied().enumerate().collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let mut out = String::from("phase                 time          share   entries\n");
        for (idx, ns) in rows {
            let share = ns as f64 * 100.0 / total as f64;
            out.push_str(&format!(
                "{:<20}  {:>10}  {:>6.1}%  {:>8}\n",
                self.names[idx],
                fmt_nanos(ns),
                share,
                self.entries[idx],
            ));
        }
        out.push_str(&format!(
            "{:<20}  {:>10}  {:>6.1}%\n",
            "total",
            fmt_nanos(self.total_nanos()),
            100.0
        ));
        out
    }
}

fn fmt_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PHASES: &[&str] = &["alpha", "beta"];

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = PhaseProfiler::new(PHASES);
        p.enter(0);
        p.enter(1);
        p.pause();
        let r = p.take();
        assert_eq!(r.total_nanos(), 0);
        assert_eq!(r.entries(), &[0, 0]);
    }

    #[test]
    fn transitions_attribute_to_the_outgoing_phase() {
        let mut p = PhaseProfiler::new(PHASES);
        p.set_enabled(true);
        p.enter(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.enter(1);
        p.pause();
        let r = p.take();
        assert!(r.nanos()[0] >= 1_000_000, "alpha got {} ns", r.nanos()[0]);
        assert_eq!(r.entries(), &[1, 1]);
        assert_eq!(r.total_nanos(), r.nanos().iter().sum::<u64>());
    }

    #[test]
    fn take_resets_and_merge_accumulates() {
        let mut p = PhaseProfiler::new(PHASES);
        p.set_enabled(true);
        p.enter(0);
        p.pause();
        let mut first = p.take();
        let second = p.take();
        assert_eq!(second.entries(), &[0, 0]);
        first.merge(&second);
        assert_eq!(first.entries(), &[1, 0]);
        assert!(p.enabled());
    }

    #[test]
    fn render_mentions_every_phase_and_total() {
        let mut p = PhaseProfiler::new(PHASES);
        p.set_enabled(true);
        p.enter(1);
        p.pause();
        let text = p.take().render();
        assert!(text.contains("alpha"));
        assert!(text.contains("beta"));
        assert!(text.contains("total"));
    }
}
