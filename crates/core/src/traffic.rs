//! Cyclic application traffic (the implicit-heartbeat workload).
//!
//! "In CANELy, to save network bandwidth … normal traffic is
//! implicitly used to signal node activity" (Sec. 6.1). CAN control
//! applications typically exhibit a cyclic traffic pattern \[20\]; this
//! module generates it: a periodic data message of configurable size,
//! period and phase, tagged with a monotonically increasing sequence
//! number in the mid reference field.

use crate::tags::TimerOwner;
use can_controller::Ctx;
use can_types::{BitTime, Mid, MsgType, Payload};

/// Configuration of a node's cyclic application traffic.
///
/// # Examples
///
/// ```
/// use canely::TrafficConfig;
/// use can_types::BitTime;
///
/// // A 4-byte sensor reading every 2 ms, phase-shifted by 100 µs.
/// let t = TrafficConfig::periodic(BitTime::new(2_000), 4).with_offset(BitTime::new(100));
/// assert_eq!(t.period, BitTime::new(2_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficConfig {
    /// Message period.
    pub period: BitTime,
    /// Data field size in bytes (0–8).
    pub size: usize,
    /// Phase offset of the first message.
    pub offset: BitTime,
}

impl TrafficConfig {
    /// Periodic traffic with the given period and payload size.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero or `size > 8`.
    pub fn periodic(period: BitTime, size: usize) -> Self {
        assert!(!period.is_zero(), "traffic period must be positive");
        assert!(size <= 8, "CAN payload is at most 8 bytes");
        TrafficConfig {
            period,
            size,
            offset: BitTime::ZERO,
        }
    }

    /// Sets the phase offset of the first message.
    pub fn with_offset(mut self, offset: BitTime) -> Self {
        self.offset = offset;
        self
    }
}

/// The per-node traffic generator driven by the stack.
#[derive(Debug)]
pub(crate) struct TrafficGenerator {
    config: TrafficConfig,
    seq: u16,
    sent: u64,
}

impl TrafficGenerator {
    pub(crate) fn new(config: TrafficConfig) -> Self {
        TrafficGenerator {
            config,
            seq: 0,
            sent: 0,
        }
    }

    /// Arms the first tick.
    pub(crate) fn start(&self, ctx: &mut Ctx<'_>) {
        let delay = if self.config.offset.is_zero() {
            self.config.period
        } else {
            self.config.offset
        };
        ctx.start_alarm(delay, TimerOwner::Traffic.encode());
    }

    /// Emits one message and re-arms the tick.
    pub(crate) fn on_tick(&mut self, ctx: &mut Ctx<'_>) {
        let mid = Mid::new(MsgType::AppData, self.seq, ctx.me());
        self.seq = self.seq.wrapping_add(1);
        self.sent += 1;
        let bytes = vec![0x5A; self.config.size];
        let payload = Payload::from_slice(&bytes).expect("size validated at construction");
        ctx.can_data_req(mid, payload);
        ctx.start_alarm(self.config.period, TimerOwner::Traffic.encode());
    }

    /// Messages emitted so far.
    pub(crate) fn sent(&self) -> u64 {
        self.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_controller::{Controller, JournalEntry, TimerWheel};
    use can_types::NodeId;

    #[test]
    fn config_validation() {
        let t = TrafficConfig::periodic(BitTime::new(1_000), 8);
        assert_eq!(t.size, 8);
        assert!(std::panic::catch_unwind(|| TrafficConfig::periodic(BitTime::ZERO, 1)).is_err());
        assert!(
            std::panic::catch_unwind(|| TrafficConfig::periodic(BitTime::new(1), 9)).is_err()
        );
    }

    #[test]
    fn generator_emits_and_rearms() {
        let mut gen = TrafficGenerator::new(TrafficConfig::periodic(BitTime::new(2_000), 4));
        let mut ctl = Controller::new();
        let mut timers = TimerWheel::new();
        let mut journal: Vec<JournalEntry> = Vec::new();
        let mut ctx = Ctx::new(
            BitTime::new(100),
            NodeId::new(1),
            &mut ctl,
            &mut timers,
            &mut journal,
            false,
        );
        gen.on_tick(&mut ctx);
        assert_eq!(gen.sent(), 1);
        assert_eq!(ctl.queue_len(), 1);
        assert_eq!(timers.next_deadline(), Some(BitTime::new(2_100)));
    }

    #[test]
    fn sequence_numbers_advance() {
        let mut gen = TrafficGenerator::new(TrafficConfig::periodic(BitTime::new(1_000), 0));
        let mut ctl = Controller::new();
        let mut timers = TimerWheel::new();
        let mut journal: Vec<JournalEntry> = Vec::new();
        for expected in 0..3u16 {
            let mut ctx = Ctx::new(
                BitTime::ZERO,
                NodeId::new(1),
                &mut ctl,
                &mut timers,
                &mut journal,
                false,
            );
            gen.on_tick(&mut ctx);
            let id = ctl.head().unwrap().id();
            let mid = can_types::Mid::from_can_id(id).unwrap();
            assert_eq!(mid.reference(), expected);
            ctl.abort(id);
        }
    }
}
