//! The stack-wide tag registry: timer-tag encodings and protocol
//! message-identifier constructors.
//!
//! Every micro-protocol multiplexes its alarms onto the node's timer
//! wheel and its frames onto the shared mid space. Both namespaces
//! used to be scattered across the protocol modules (`fd.rs` grew the
//! life-sign mids, `detectors.rs` the probe mids and a private copy of
//! the skew rule); this module is now the single place where a tag
//! kind or a wire encoding is claimed, so new protocol layers — the
//! federation gateway being the first — register here and nowhere
//! else.
//!
//! # Timer tags
//!
//! Each 64-bit tag encodes the owning protocol in the top byte and a
//! protocol-specific payload (usually a node identifier) in the low
//! bits, so the stack can route expiries without extra bookkeeping.
//! Kinds 1–7 belong to [`TimerOwner`]; composed applications that wrap
//! a `CanelyStack` (e.g. the process-group layer) must draw their
//! private tags from [`TAG_EXTERNAL_SCRIPT`] upward, which
//! [`TimerOwner::decode`] is guaranteed never to claim.
//!
//! # Wire mids
//!
//! The mid constructors fix the `(type, reference, node)` encodings of
//! the control traffic: [`els_mid`] for explicit life-signs,
//! [`ping_mid`] for the SWIM-style probe family and [`digest_mid`] for
//! federation segment-view digests.

use can_types::{BitTime, Mid, MsgType, NodeId};

/// Owning protocol of a timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerOwner {
    /// Failure-detection surveillance timer for a node (payload: node id).
    Surveillance(NodeId),
    /// RHA maximum-termination alarm.
    RhaTermination,
    /// Membership cycle / join-wait alarm (the shared `tid` of Fig. 9).
    MembershipCycle,
    /// Application traffic generator tick.
    Traffic,
    /// Scheduled upper-layer action (join/leave scripting).
    Scripted(u32),
    /// Failure-detector protocol period tick (probe rounds of the
    /// SWIM-style backend). Untraced, like [`TimerOwner::Traffic`].
    DetectorPeriod,
    /// Federation digest broadcast tick at a gateway node. Untraced,
    /// like [`TimerOwner::DetectorPeriod`]: it is pacing, not protocol
    /// state.
    FederationDigest,
}

const KIND_SURVEILLANCE: u64 = 1;
const KIND_RHA: u64 = 2;
const KIND_MEMBERSHIP: u64 = 3;
const KIND_TRAFFIC: u64 = 4;
const KIND_SCRIPTED: u64 = 5;
const KIND_DETECTOR_PERIOD: u64 = 6;
const KIND_FEDERATION_DIGEST: u64 = 7;

/// First tag of the space reserved for applications composed *around*
/// the CANELy stack (group scripting, harness alarms). Tags at or
/// above this value are never produced nor decoded by [`TimerOwner`],
/// so a wrapper can route them before delegating to the stack.
///
/// (The process-group layer used to hardcode `6 << 56` here, which
/// collided with [`TimerOwner::DetectorPeriod`] — a group script slot 0
/// would have swallowed the SWIM backend's period tick.)
pub const TAG_EXTERNAL_SCRIPT: u64 = 8 << 56;

impl TimerOwner {
    /// Encodes the owner as a timer tag.
    pub fn encode(self) -> u64 {
        match self {
            TimerOwner::Surveillance(node) => {
                (KIND_SURVEILLANCE << 56) | node.as_u8() as u64
            }
            TimerOwner::RhaTermination => KIND_RHA << 56,
            TimerOwner::MembershipCycle => KIND_MEMBERSHIP << 56,
            TimerOwner::Traffic => KIND_TRAFFIC << 56,
            TimerOwner::Scripted(action) => (KIND_SCRIPTED << 56) | action as u64,
            TimerOwner::DetectorPeriod => KIND_DETECTOR_PERIOD << 56,
            TimerOwner::FederationDigest => KIND_FEDERATION_DIGEST << 56,
        }
    }

    /// Decodes a timer tag, if it was produced by [`TimerOwner::encode`].
    pub fn decode(tag: u64) -> Option<TimerOwner> {
        let payload = tag & 0x00FF_FFFF_FFFF_FFFF;
        match tag >> 56 {
            KIND_SURVEILLANCE if payload < 64 => {
                Some(TimerOwner::Surveillance(NodeId::new(payload as u8)))
            }
            KIND_RHA => Some(TimerOwner::RhaTermination),
            KIND_MEMBERSHIP => Some(TimerOwner::MembershipCycle),
            KIND_TRAFFIC => Some(TimerOwner::Traffic),
            KIND_SCRIPTED => Some(TimerOwner::Scripted(payload as u32)),
            KIND_DETECTOR_PERIOD => Some(TimerOwner::DetectorPeriod),
            KIND_FEDERATION_DIGEST => Some(TimerOwner::FederationDigest),
            _ => None,
        }
    }
}

/// The mid of an explicit life-sign of node `r`.
pub fn els_mid(r: NodeId) -> Mid {
    Mid::new(MsgType::Els, 0, r)
}

/// Direct probe: "target, please emit a life-sign".
pub const PING_DIRECT: u16 = 0;
/// Indirect probe request: "helpers, please probe target for me".
pub const PING_REQ: u16 = 1;
/// Number of helper nodes enlisted by a ping-req.
pub const SWIM_HELPERS: usize = 3;

/// Wire encoding of a probe frame: the `reference` field carries the
/// probe subkind in its high byte and the prober in its low byte; the
/// `node` field carries the probe target.
pub fn ping_mid(subkind: u16, prober: NodeId, target: NodeId) -> Mid {
    Mid::new(
        MsgType::Ping,
        (subkind << 8) | u16::from(prober.as_u8()),
        target,
    )
}

/// Deterministic per-observer skew applied by round-based detector
/// backends: independent oscillators never expire in lock-step, and
/// 512 bit-times per rank exceeds a worst-case frame plus error
/// signalling.
pub fn detector_skew(me: NodeId) -> BitTime {
    BitTime::new(u64::from(me.as_u8()) * 512)
}

/// Maximum number of federated segments the digest wire encoding can
/// address (the reporter and subject segment each occupy a nibble of
/// the mid reference).
pub const MAX_SEGMENTS: usize = 16;

/// Wire encoding of a federation segment-view digest: the `reference`
/// field carries the reporting segment in its high nibble and the
/// subject segment in its low nibble; the `node` field carries the
/// *transmitting* node's local id — rewritten at every gateway hop so
/// the frame keeps doubling as an implicit heartbeat of whoever
/// actually put it on this bus.
pub fn digest_mid(reporter_seg: u8, subject_seg: u8, transmitter: NodeId) -> Mid {
    debug_assert!((reporter_seg as usize) < MAX_SEGMENTS);
    debug_assert!((subject_seg as usize) < MAX_SEGMENTS);
    Mid::new(
        MsgType::Digest,
        (u16::from(reporter_seg) << 4) | u16::from(subject_seg),
        transmitter,
    )
}

/// Decodes the `(reporter, subject)` segment pair of a digest mid;
/// `None` for non-digest mids.
pub fn digest_mid_segments(mid: Mid) -> Option<(u8, u8)> {
    if mid.msg_type() != MsgType::Digest {
        return None;
    }
    let reference = mid.reference();
    Some((((reference >> 4) & 0xF) as u8, (reference & 0xF) as u8))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let owners = [
            TimerOwner::Surveillance(NodeId::new(0)),
            TimerOwner::Surveillance(NodeId::new(63)),
            TimerOwner::RhaTermination,
            TimerOwner::MembershipCycle,
            TimerOwner::Traffic,
            TimerOwner::Scripted(7),
            TimerOwner::DetectorPeriod,
            TimerOwner::FederationDigest,
        ];
        for owner in owners {
            assert_eq!(TimerOwner::decode(owner.encode()), Some(owner));
        }
    }

    #[test]
    fn distinct_owners_distinct_tags() {
        let a = TimerOwner::Surveillance(NodeId::new(1)).encode();
        let b = TimerOwner::Surveillance(NodeId::new(2)).encode();
        let c = TimerOwner::MembershipCycle.encode();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn garbage_tags_decode_to_none() {
        assert_eq!(TimerOwner::decode(0), None);
        assert_eq!(TimerOwner::decode(u64::MAX), None);
        // Surveillance payload out of node range.
        assert_eq!(TimerOwner::decode((1 << 56) | 64), None);
    }

    #[test]
    fn external_tag_space_is_disjoint_from_timer_owners() {
        // Wrappers own [TAG_EXTERNAL_SCRIPT, ∞): decode must never
        // claim a tag from that range, whatever the payload.
        for offset in [0, 1, 0xFFFF, 0x00FF_FFFF_FFFF_FFFF] {
            assert_eq!(TimerOwner::decode(TAG_EXTERNAL_SCRIPT + offset), None);
        }
        // And every TimerOwner encoding stays below it.
        for owner in [
            TimerOwner::Surveillance(NodeId::new(63)),
            TimerOwner::Scripted(u32::MAX),
            TimerOwner::DetectorPeriod,
            TimerOwner::FederationDigest,
        ] {
            assert!(owner.encode() < TAG_EXTERNAL_SCRIPT);
        }
    }

    #[test]
    fn digest_mid_round_trips_segments() {
        let mid = digest_mid(3, 11, NodeId::new(5));
        assert_eq!(digest_mid_segments(mid), Some((3, 11)));
        assert_eq!(mid.node(), NodeId::new(5));
        assert_eq!(digest_mid_segments(els_mid(NodeId::new(1))), None);
    }

    #[test]
    fn probe_mid_encodes_subkind_and_prober() {
        let mid = ping_mid(PING_REQ, NodeId::new(4), NodeId::new(9));
        assert_eq!(mid.reference() >> 8, PING_REQ);
        assert_eq!(mid.reference() & 0xFF, 4);
        assert_eq!(mid.node(), NodeId::new(9));
    }
}
