//! Timer-tag encoding shared by the stack's micro-protocols.
//!
//! Each protocol multiplexes its alarms onto the node's timer wheel;
//! the 64-bit tag encodes the owning protocol in the top byte and a
//! protocol-specific payload (usually a node identifier) in the low
//! bits, so the stack can route expiries without extra bookkeeping.

use can_types::NodeId;

/// Owning protocol of a timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerOwner {
    /// Failure-detection surveillance timer for a node (payload: node id).
    Surveillance(NodeId),
    /// RHA maximum-termination alarm.
    RhaTermination,
    /// Membership cycle / join-wait alarm (the shared `tid` of Fig. 9).
    MembershipCycle,
    /// Application traffic generator tick.
    Traffic,
    /// Scheduled upper-layer action (join/leave scripting).
    Scripted(u32),
    /// Failure-detector protocol period tick (probe rounds of the
    /// SWIM-style backend). Untraced, like [`TimerOwner::Traffic`].
    DetectorPeriod,
}

const KIND_SURVEILLANCE: u64 = 1;
const KIND_RHA: u64 = 2;
const KIND_MEMBERSHIP: u64 = 3;
const KIND_TRAFFIC: u64 = 4;
const KIND_SCRIPTED: u64 = 5;
const KIND_DETECTOR_PERIOD: u64 = 6;

impl TimerOwner {
    /// Encodes the owner as a timer tag.
    pub fn encode(self) -> u64 {
        match self {
            TimerOwner::Surveillance(node) => {
                (KIND_SURVEILLANCE << 56) | node.as_u8() as u64
            }
            TimerOwner::RhaTermination => KIND_RHA << 56,
            TimerOwner::MembershipCycle => KIND_MEMBERSHIP << 56,
            TimerOwner::Traffic => KIND_TRAFFIC << 56,
            TimerOwner::Scripted(action) => (KIND_SCRIPTED << 56) | action as u64,
            TimerOwner::DetectorPeriod => KIND_DETECTOR_PERIOD << 56,
        }
    }

    /// Decodes a timer tag, if it was produced by [`TimerOwner::encode`].
    pub fn decode(tag: u64) -> Option<TimerOwner> {
        let payload = tag & 0x00FF_FFFF_FFFF_FFFF;
        match tag >> 56 {
            KIND_SURVEILLANCE if payload < 64 => {
                Some(TimerOwner::Surveillance(NodeId::new(payload as u8)))
            }
            KIND_RHA => Some(TimerOwner::RhaTermination),
            KIND_MEMBERSHIP => Some(TimerOwner::MembershipCycle),
            KIND_TRAFFIC => Some(TimerOwner::Traffic),
            KIND_SCRIPTED => Some(TimerOwner::Scripted(payload as u32)),
            KIND_DETECTOR_PERIOD => Some(TimerOwner::DetectorPeriod),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let owners = [
            TimerOwner::Surveillance(NodeId::new(0)),
            TimerOwner::Surveillance(NodeId::new(63)),
            TimerOwner::RhaTermination,
            TimerOwner::MembershipCycle,
            TimerOwner::Traffic,
            TimerOwner::Scripted(7),
            TimerOwner::DetectorPeriod,
        ];
        for owner in owners {
            assert_eq!(TimerOwner::decode(owner.encode()), Some(owner));
        }
    }

    #[test]
    fn distinct_owners_distinct_tags() {
        let a = TimerOwner::Surveillance(NodeId::new(1)).encode();
        let b = TimerOwner::Surveillance(NodeId::new(2)).encode();
        let c = TimerOwner::MembershipCycle.encode();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn garbage_tags_decode_to_none() {
        assert_eq!(TimerOwner::decode(0), None);
        assert_eq!(TimerOwner::decode(u64::MAX), None);
        // Surveillance payload out of node range.
        assert_eq!(TimerOwner::decode((1 << 56) | 64), None);
    }
}
