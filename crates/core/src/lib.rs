//! CANELy node failure detection and site membership.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (*"Node Failure Detection and Membership in CANELy"*, Rufino,
//! Veríssimo, Arroz — DSN 2003): a protocol suite, layered on the
//! exposed CAN controller interface of `can-controller`, that gives a
//! plain CAN fieldbus *consistent* node failure detection and site
//! membership — services native CAN lacks because its fault
//! confinement is purely local and its omission failures may be
//! inconsistent.
//!
//! The suite mirrors Fig. 5 of the paper:
//!
//! ```text
//!            Upper Layer Interface (msh-can.req / msh-can.nty)
//!      ┌────────────────────────────────────────────────────┐
//!      │                    Membership                      │  Fig. 9
//!      ├──────────────────┬───────────────┬─────────────────┤
//!      │ Failure Detection│ FDA agreement │ RHA agreement   │  Figs. 8/6/7
//!      ├──────────────────┴───────────────┴─────────────────┤
//!      │     CAN standard layer (+ can-data.nty extension)  │  Fig. 4
//!      └────────────────────────────────────────────────────┘
//! ```
//!
//! * [`Fda`] — *Failure Detection Agreement* (Fig. 6): an optimized
//!   eager-diffusion broadcast of failure-sign remote frames, which
//!   cluster on the wire.
//! * [`Rha`] — *Reception History Agreement* (Fig. 7): agreement on a
//!   reception-history vector handling multiple join/leave requests in
//!   bounded time and bandwidth.
//! * [`FailureDetector`] — the node failure detection *seam*: a trait
//!   the stack routes all detection inputs through, with the paper's
//!   surveillance-timer protocol (Fig. 8) as the default backend
//!   ([`SurveillanceDetector`]: per-node surveillance timers, implicit
//!   heartbeats from normal traffic via `can-data.nty`, explicit
//!   life-signs (ELS) only when needed). The [`detectors`] module adds
//!   a SWIM-style probing backend and an ADD-channel ◇P adaptive
//!   heartbeat backend, selected via [`DetectorKind`] — see
//!   `docs/DETECTORS.md` for the contract and a measured QoS shootout.
//! * [`Membership`] — the site membership protocol (Fig. 9):
//!   membership cycle, join/leave handling, view agreement.
//! * [`CanelyStack`] — the per-node composition of all four, ready to
//!   run on the simulator, plus an optional cyclic application-traffic
//!   generator (the implicit-heartbeat workload of Sec. 6.3).
//!
//! Two support modules complete the crate: [`obs`] — the structured
//! protocol-event log with causal (cause-ID) threading that powers
//! trace export and the campaign oracle — and [`tags`] — the timer-tag
//! encoding the micro-protocols multiplex onto the node timer wheel.
//!
//! # Quick start
//!
//! ```
//! use can_bus::{BusConfig, FaultPlan};
//! use can_controller::Simulator;
//! use can_types::{BitTime, NodeId};
//! use canely::{CanelyConfig, CanelyStack};
//!
//! let config = CanelyConfig::default();
//! let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
//! for id in 0..4 {
//!     sim.add_node(NodeId::new(id), CanelyStack::new(config.clone()));
//! }
//! // Run a few membership cycles: every node converges to the same view.
//! sim.run_until(BitTime::new(200_000));
//! let view = sim.app::<CanelyStack>(NodeId::new(0)).view();
//! assert_eq!(view.len(), 4);
//! for id in 1..4 {
//!     assert_eq!(sim.app::<CanelyStack>(NodeId::new(id)).view(), view);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod detectors;
pub mod fd;
pub mod fda;
pub mod membership;
pub mod obs;
pub mod rha;
pub mod stack;
pub mod tags;
pub mod traffic;

pub use config::CanelyConfig;
pub use detectors::{AddPhiDetector, SwimDetector};
pub use fd::{
    DetectorKind, DetectorMetrics, DetectorTimer, FailureDetector, FdAction, SurveillanceDetector,
};
pub use fda::Fda;
pub use membership::{Membership, MembershipEvent};
pub use obs::{EventSink, ObsLog, ProtocolEvent, Snapshot, SnapshotFold, TimedEvent};
pub use rha::{Rha, RhaNotification};
pub use stack::{CanelyStack, UpperEvent};
pub use traffic::TrafficConfig;
