//! The per-node CANELy stack: the composition of Fig. 5.
//!
//! [`CanelyStack`] wires the four protocol entities together exactly
//! as the architecture diagram prescribes:
//!
//! * driver events fan out to the failure detector (activity
//!   signalling), the FDA and RHA agreement modules and the membership
//!   protocol;
//! * FDA notifications flow through the failure detector
//!   (`fda-can.nty` → `fd-can.nty`) into the membership protocol;
//! * RHA notifications (`INIT`/`END`) drive the membership cycle;
//! * membership actions (`fd-can.req(START/STOP)`, `rha-can.req`)
//!   flow back down.
//!
//! The stack also hosts the optional cyclic application traffic
//! generator, whose data frames double as implicit heartbeats, and
//! records every upper-layer notification with its timestamp for
//! post-run analysis.

use crate::config::CanelyConfig;
use crate::fd::{DetectorTimer, FailureDetector, FdAction};
use crate::fda::Fda;
use crate::membership::{Membership, MembershipEvent, MshAction};
use crate::obs::{Cause, EventSink, ObsTimer, ProtocolEvent};
use crate::rha::{Rha, RhaNotification};
use crate::tags::TimerOwner;
use crate::traffic::{TrafficConfig, TrafficGenerator};
use can_controller::{Application, Ctx, DriverEvent, TimerId};
use can_types::{BitTime, MsgType, NodeId, NodeSet};
use std::any::Any;

const SCRIPT_JOIN: u32 = 0;
const SCRIPT_LEAVE: u32 = 1;

/// An upper-layer notification recorded by the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpperEvent {
    /// `msh-can.nty`: a membership change.
    MembershipChange {
        /// The set of active sites.
        view: NodeSet,
        /// The failed nodes reported with this change.
        failed: NodeSet,
    },
    /// `fd-can.nty(r)` as seen by the membership layer: the failure of
    /// `r` was consistently agreed.
    FailureNotified(NodeId),
    /// The local node's leave completed.
    LeftService,
    /// The local node was expelled (declared failed while running).
    Expelled,
}

/// The CANELy protocol stack of one node.
///
/// # Examples
///
/// ```
/// use can_types::BitTime;
/// use canely::{CanelyConfig, CanelyStack, TrafficConfig};
///
/// // A node with 2 ms cyclic sensor traffic that joins at power-on
/// // and leaves the membership after one second.
/// let stack = CanelyStack::new(CanelyConfig::default())
///     .with_traffic(TrafficConfig::periodic(BitTime::new(2_000), 4))
///     .with_leave_at(BitTime::new(1_000_000));
/// assert!(stack.view().is_empty());
/// ```
#[derive(Debug)]
pub struct CanelyStack {
    config: CanelyConfig,
    fda: Fda,
    rha: Rha,
    fd: Box<dyn FailureDetector>,
    msh: Membership,
    traffic: Option<TrafficGenerator>,
    auto_join: bool,
    join_at: Option<BitTime>,
    leave_at: Option<BitTime>,
    active: bool,
    events: Vec<(BitTime, UpperEvent)>,
    obs: EventSink,
}

impl CanelyStack {
    /// Creates a stack that joins the membership at power-on.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`CanelyConfig::validate`]).
    pub fn new(config: CanelyConfig) -> Self {
        config.validate().expect("invalid CANELy configuration");
        let mut fda = Fda::new();
        // The weakened mutant forgets the Tina term in surveillance
        // margins and stops FDA eager diffusion (see
        // `CanelyConfig::weakened_fda`).
        fda.set_eager_diffusion(!config.weakened_fda);
        CanelyStack {
            fda,
            rha: Rha::new(config.rha_timeout, config.inconsistent_degree),
            fd: config
                .detector
                .build(config.heartbeat_period, config.surveillance_margin()),
            msh: Membership::new(
                config.membership_cycle,
                config.join_wait,
                config.rejoin_on_failed_join,
            ),
            traffic: None,
            auto_join: true,
            join_at: None,
            leave_at: None,
            active: true,
            events: Vec::new(),
            obs: EventSink::disabled(),
            config,
        }
    }

    /// Installs a structured-event sink on the whole stack: every
    /// protocol entity (failure detection, FDA, RHA, membership) emits
    /// its [`crate::obs::ProtocolEvent`]s into the shared log behind
    /// the sink. Pass a clone of the same [`crate::obs::ObsLog`] sink
    /// to every node of a simulation to obtain one merged trace.
    pub fn with_obs(mut self, sink: EventSink) -> Self {
        self.set_obs(sink);
        self
    }

    /// In-place form of [`CanelyStack::with_obs`], for stacks reused
    /// across runs (see [`CanelyStack::reset_for_run`]).
    pub fn set_obs(&mut self, sink: EventSink) {
        self.fda.set_sink(sink.clone());
        self.rha.set_sink(sink.clone());
        self.fd.set_sink(sink.clone());
        self.msh.set_sink(sink.clone());
        self.obs = sink;
    }

    /// Installs live-telemetry counters on the failure-detector
    /// backend (see [`crate::DetectorMetrics`]). Like the event sink,
    /// this is cleared by [`CanelyStack::reset_for_run`] and must be
    /// re-applied per run.
    pub fn set_detector_metrics(&mut self, metrics: crate::DetectorMetrics) {
        self.fd.set_metrics(metrics);
    }

    /// Adds cyclic application traffic (implicit heartbeats).
    pub fn with_traffic(mut self, traffic: TrafficConfig) -> Self {
        self.set_traffic(traffic);
        self
    }

    /// In-place form of [`CanelyStack::with_traffic`], for stacks
    /// reused across runs.
    pub fn set_traffic(&mut self, traffic: TrafficConfig) {
        self.traffic = Some(TrafficGenerator::new(traffic));
    }

    /// Arena reuse: rewinds this stack to exactly the state
    /// [`CanelyStack::new`]`(config)` would produce, keeping the
    /// recorded-notification buffer's storage (and, when the stack
    /// lives in a `Box<dyn Application>`, the box allocation itself).
    /// Builder options — sink, traffic, join/leave scripting — are
    /// cleared and must be re-applied via the `set_*` methods.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn reset_for_run(&mut self, config: CanelyConfig) {
        let mut events = std::mem::take(&mut self.events);
        events.clear();
        *self = CanelyStack::new(config);
        self.events = events;
    }

    /// Defers the join request to the given absolute instant instead
    /// of power-on.
    pub fn with_join_at(mut self, at: BitTime) -> Self {
        self.auto_join = false;
        self.join_at = Some(at);
        self
    }

    /// Schedules a leave request at the given absolute instant.
    pub fn with_leave_at(mut self, at: BitTime) -> Self {
        self.leave_at = Some(at);
        self
    }

    /// Never joins the membership (pure traffic / observer node).
    pub fn without_auto_join(mut self) -> Self {
        self.auto_join = false;
        self
    }

    /// The stack configuration.
    pub fn config(&self) -> &CanelyConfig {
        &self.config
    }

    /// The current site membership view `Vs`.
    pub fn view(&self) -> NodeSet {
        self.msh.view()
    }

    /// Whether the local node currently belongs to the view. (Only
    /// meaningful with the node's own id, which the stack learns at
    /// power-on; before that it reports on raw view contents.)
    pub fn is_out_of_service(&self) -> bool {
        self.msh.is_out_of_service()
    }

    /// All upper-layer notifications recorded so far.
    pub fn events(&self) -> &[(BitTime, UpperEvent)] {
        &self.events
    }

    /// The membership-change history (timestamped views).
    pub fn membership_history(&self) -> Vec<MembershipEvent> {
        self.events
            .iter()
            .filter_map(|&(time, event)| match event {
                UpperEvent::MembershipChange { view, failed } => Some(MembershipEvent {
                    time,
                    view,
                    failed,
                }),
                _ => None,
            })
            .collect()
    }

    /// Number of explicit life-signs issued by this node.
    pub fn els_sent(&self) -> u64 {
        self.fd.els_sent()
    }

    /// Total failure-detector control frames issued by this node:
    /// life-signs plus any backend-specific probe traffic (see
    /// [`crate::FailureDetector::control_frames`]).
    pub fn detector_frames(&self) -> u64 {
        self.fd.control_frames()
    }

    /// Number of completed RHA executions at this node.
    pub fn rha_executions(&self) -> u64 {
        self.rha.executions()
    }

    /// Number of application messages emitted by the traffic generator.
    pub fn traffic_sent(&self) -> u64 {
        self.traffic.as_ref().map_or(0, TrafficGenerator::sent)
    }

    /// The nodes currently under surveillance by the local failure
    /// detector.
    pub fn monitored(&self) -> NodeSet {
        self.fd.monitored()
    }

    fn record(&mut self, ctx: &Ctx<'_>, event: UpperEvent) {
        // Mirror the upper-layer notification into the structured
        // trace so one export covers the whole stack.
        let mirrored = match event {
            UpperEvent::MembershipChange { view, failed } => {
                ProtocolEvent::ViewChanged { view, failed }
            }
            UpperEvent::FailureNotified(r) => ProtocolEvent::FailureNotified { failed: r },
            UpperEvent::LeftService => ProtocolEvent::LeftService,
            UpperEvent::Expelled => ProtocolEvent::Expelled,
        };
        self.obs.emit(ctx.now(), ctx.me(), mirrored);
        self.events.push((ctx.now(), event));
    }

    /// Routes membership actions to the companion services.
    fn handle_msh_actions(&mut self, ctx: &mut Ctx<'_>, actions: Vec<MshAction>) {
        for action in actions {
            match action {
                MshAction::StartFd(r) => {
                    // A (re)joining node resets any stale FDA state so
                    // a later failure is a fresh protocol execution.
                    self.fda.reset(r);
                    self.fd.start(ctx, r);
                }
                MshAction::StopFd(r) => self.fd.stop(ctx, r),
                MshAction::InvokeRha => {
                    if let Some(nty) = self.rha.request(ctx, self.msh.shared_sets()) {
                        self.handle_rha_nty(ctx, nty);
                    }
                }
                MshAction::Notify { view, failed } => {
                    self.record(ctx, UpperEvent::MembershipChange { view, failed });
                }
                MshAction::LeftService => {
                    self.fd.stop_all(ctx);
                    self.active = false;
                    self.record(ctx, UpperEvent::LeftService);
                }
                MshAction::Expelled => {
                    self.fd.stop_all(ctx);
                    self.record(ctx, UpperEvent::Expelled);
                    if let Some(delay) = self.config.expulsion_rejoin_delay {
                        // Fresh incarnation: membership and agreement
                        // state are discarded and a reintegration is
                        // attempted "a period much higher than Tm"
                        // later (Sec. 6.4). The FDA duplicate counters
                        // are deliberately KEPT: they suppress the
                        // still-circulating failure-sign of the old
                        // incarnation (resetting them would make this
                        // node re-diffuse its own failure-sign forever).
                        self.rha = Rha::new(
                            self.config.rha_timeout,
                            self.config.inconsistent_degree,
                        );
                        self.msh = Membership::new(
                            self.config.membership_cycle,
                            self.config.join_wait,
                            self.config.rejoin_on_failed_join,
                        );
                        // The fresh incarnation keeps emitting into the
                        // same trace.
                        self.rha.set_sink(self.obs.clone());
                        self.msh.set_sink(self.obs.clone());
                        ctx.start_alarm(
                            delay,
                            TimerOwner::Scripted(SCRIPT_JOIN).encode(),
                        );
                        ctx.journal("MSH: expelled — rejoining as a new incarnation");
                    } else {
                        self.active = false;
                    }
                }
            }
        }
    }

    fn handle_rha_nty(&mut self, ctx: &mut Ctx<'_>, nty: RhaNotification) {
        let actions = match nty {
            // Fig. 9, line s17: INIT (re)synchronizes the cycle.
            RhaNotification::Init => self.msh.on_cycle_boundary(ctx, false),
            RhaNotification::End(vector) => self.msh.on_rha_end(ctx, vector),
        };
        self.handle_msh_actions(ctx, actions);
    }
}

impl Application for CanelyStack {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        // Power-on actions have no in-protocol trigger.
        self.obs.clear_cause();
        if let Some(traffic) = &self.traffic {
            traffic.start(ctx);
        }
        if self.auto_join {
            self.msh.request_join(ctx);
        } else if let Some(at) = self.join_at {
            let delay = at.saturating_sub(ctx.now());
            ctx.start_alarm(delay, TimerOwner::Scripted(SCRIPT_JOIN).encode());
        }
        if let Some(at) = self.leave_at {
            let delay = at.saturating_sub(ctx.now());
            ctx.start_alarm(delay, TimerOwner::Scripted(SCRIPT_LEAVE).encode());
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &DriverEvent) {
        if !self.active {
            return;
        }
        // Everything the stack does inside this dispatch is a reaction
        // to the frame delivered at this instant; the delivery instant
        // names the bus transaction uniquely (the bus is serialized).
        self.obs.set_cause(Cause::Bus {
            deliver_at: ctx.now(),
        });
        match event {
            DriverEvent::DataNty { mid } => {
                // Sec. 6.3: every data frame is an implicit heartbeat
                // of its transmitter.
                if self.config.implicit_heartbeats {
                    self.fd.on_activity(ctx, mid.node());
                }
            }
            DriverEvent::DataInd { mid, payload } => {
                if mid.msg_type() == MsgType::Rha {
                    let full_member = self.msh.is_member(ctx.me());
                    let sets = self.msh.shared_sets();
                    if let Some(nty) = self.rha.on_data_ind(ctx, *mid, payload, full_member, sets)
                    {
                        self.handle_rha_nty(ctx, nty);
                    }
                }
            }
            DriverEvent::RtrInd { mid } => match mid.msg_type() {
                MsgType::Els => {
                    self.obs.emit(
                        ctx.now(),
                        ctx.me(),
                        ProtocolEvent::LifeSignObserved { of: mid.node() },
                    );
                    self.fd.on_activity(ctx, mid.node());
                }
                MsgType::Fda => {
                    if let Some(r) = self.fda.on_rtr_ind(ctx, *mid) {
                        let FdAction::Notify(r) = self.fd.on_fda_nty(ctx, r) else {
                            unreachable!("on_fda_nty always notifies");
                        };
                        self.record(ctx, UpperEvent::FailureNotified(r));
                        let actions = self.msh.on_fd_nty(ctx, r);
                        self.handle_msh_actions(ctx, actions);
                    }
                }
                MsgType::Join => {
                    self.obs.emit(
                        ctx.now(),
                        ctx.me(),
                        ProtocolEvent::JoinObserved { subject: mid.node() },
                    );
                    self.msh.on_join_ind(mid.node());
                    if self.config.activity_from_all_rtr {
                        self.fd.on_activity(ctx, mid.node());
                    }
                }
                MsgType::Leave => {
                    self.obs.emit(
                        ctx.now(),
                        ctx.me(),
                        ProtocolEvent::LeaveObserved { subject: mid.node() },
                    );
                    self.msh.on_leave_ind(mid.node());
                    if self.config.activity_from_all_rtr {
                        self.fd.on_activity(ctx, mid.node());
                    }
                }
                MsgType::Ping => {
                    // Probe frames of the SWIM-style backend; other
                    // backends ignore them.
                    self.fd.on_detector_frame(ctx, *mid);
                }
                _ => {}
            },
            DriverEvent::DataCnf { .. } | DriverEvent::RtrCnf { .. } => {}
            DriverEvent::TxFailInd { mid } => {
                ctx.journal(format_args!("transmit request {mid} dropped by retry limit"));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        let Some(owner) = TimerOwner::decode(tag) else {
            return;
        };
        // The traffic generator keeps running even after a leave (the
        // node still computes; it just left the membership service) —
        // everything else stops.
        if let TimerOwner::Traffic = owner {
            if let Some(traffic) = &mut self.traffic {
                traffic.on_tick(ctx);
            }
            return;
        }
        if !self.active {
            return;
        }
        if let Some(timer) = match owner {
            TimerOwner::Surveillance(r) => Some(ObsTimer::Surveillance(r)),
            TimerOwner::RhaTermination => Some(ObsTimer::RhaTermination),
            TimerOwner::MembershipCycle => Some(ObsTimer::MembershipCycle),
            // Detector period ticks are untraced like traffic ticks:
            // they are pacing, not protocol state.
            TimerOwner::Traffic
            | TimerOwner::Scripted(_)
            | TimerOwner::DetectorPeriod
            | TimerOwner::FederationDigest => None,
        } {
            // The expiry links back to its arming (resolved inside the
            // log); everything handled below is caused by the expiry.
            self.obs.clear_cause();
            if let Some(seq) =
                self.obs
                    .emit(ctx.now(), ctx.me(), ProtocolEvent::TimerExpired { timer })
            {
                self.obs.set_cause(Cause::Event { seq });
            }
        } else {
            // Scripted join/leave alarms have no in-protocol trigger.
            self.obs.clear_cause();
        }
        match owner {
            TimerOwner::Surveillance(r) => {
                if let Some(FdAction::Suspect(r)) =
                    self.fd.on_timer(ctx, DetectorTimer::Node(r))
                {
                    self.fda.invoke(ctx, r); // Fig. 8, line f10
                }
            }
            TimerOwner::DetectorPeriod => {
                if let Some(FdAction::Suspect(r)) =
                    self.fd.on_timer(ctx, DetectorTimer::Period)
                {
                    self.fda.invoke(ctx, r);
                }
            }
            TimerOwner::RhaTermination => {
                let nty = self.rha.on_timeout(ctx);
                self.handle_rha_nty(ctx, nty);
            }
            TimerOwner::MembershipCycle => {
                let actions = self.msh.on_cycle_boundary(ctx, true);
                self.handle_msh_actions(ctx, actions);
            }
            TimerOwner::Scripted(SCRIPT_JOIN) => self.msh.request_join(ctx),
            TimerOwner::Scripted(SCRIPT_LEAVE) => self.msh.request_leave(ctx),
            // Federation digest ticks belong to the gateway wrapper,
            // which intercepts them before delegating here; a plain
            // stack ignores them.
            TimerOwner::Scripted(_) | TimerOwner::Traffic | TimerOwner::FederationDigest => {}
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_bus::{
        AccepterSpec, BusConfig, FaultEffect, FaultMatcher, FaultPlan, ScriptedFault,
    };
    use can_controller::Simulator;

    fn n(id: u8) -> NodeId {
        NodeId::new(id)
    }

    fn cluster(sim: &mut Simulator, count: u8) {
        for id in 0..count {
            sim.add_node(n(id), CanelyStack::new(CanelyConfig::default()));
        }
    }

    /// Time comfortably past bootstrap (join wait + a few cycles).
    const SETTLED: BitTime = BitTime::new(200_000);

    #[test]
    fn cluster_bootstraps_to_common_view() {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        cluster(&mut sim, 5);
        sim.run_until(SETTLED);
        let expected = NodeSet::first_n(5);
        for id in 0..5 {
            assert_eq!(
                sim.app::<CanelyStack>(n(id)).view(),
                expected,
                "node {id} disagrees"
            );
        }
    }

    #[test]
    fn all_members_monitor_each_other_after_bootstrap() {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        cluster(&mut sim, 3);
        sim.run_until(SETTLED);
        for id in 0..3 {
            assert_eq!(
                sim.app::<CanelyStack>(n(id)).monitored(),
                NodeSet::first_n(3)
            );
        }
    }

    #[test]
    fn idle_cluster_emits_life_signs() {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        cluster(&mut sim, 3);
        sim.run_until(SETTLED);
        for id in 0..3 {
            assert!(
                sim.app::<CanelyStack>(n(id)).els_sent() > 0,
                "idle node {id} must send explicit life-signs"
            );
        }
    }

    #[test]
    fn cyclic_traffic_suppresses_life_signs() {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        for id in 0..3 {
            sim.add_node(
                n(id),
                CanelyStack::new(CanelyConfig::default())
                    .with_traffic(TrafficConfig::periodic(BitTime::new(2_000), 4)),
            );
        }
        sim.run_until(SETTLED);
        for id in 0..3 {
            let app = sim.app::<CanelyStack>(n(id));
            assert!(app.traffic_sent() > 50);
            assert_eq!(
                app.els_sent(),
                0,
                "implicit heartbeats must suppress ELS at node {id}"
            );
        }
    }

    #[test]
    fn crash_is_detected_and_view_purged_everywhere() {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        cluster(&mut sim, 4);
        let crash_at = BitTime::new(250_000);
        sim.schedule_crash(n(2), crash_at);
        sim.run_until(BitTime::new(500_000));
        let expected = NodeSet::first_n(4) - NodeSet::singleton(n(2));
        for id in [0u8, 1, 3] {
            let app = sim.app::<CanelyStack>(n(id));
            assert_eq!(app.view(), expected, "node {id} view");
            let failure = app
                .events()
                .iter()
                .find(|(_, e)| matches!(e, UpperEvent::FailureNotified(r) if *r == n(2)))
                .unwrap_or_else(|| panic!("node {id} missed the failure"));
            assert!(failure.0 > crash_at);
            // Detection latency bound: Th + Ttd plus dissemination.
            let bound = CanelyConfig::default().detection_latency_bound()
                + BitTime::new(1_000);
            assert!(
                failure.0 - crash_at <= bound,
                "node {id}: detection took {} (bound {})",
                failure.0 - crash_at,
                bound
            );
        }
    }

    #[test]
    fn alternative_backends_bootstrap_without_false_suspicions() {
        use crate::fd::DetectorKind;
        for kind in DetectorKind::ALL {
            let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
            for id in 0..4 {
                sim.add_node(
                    n(id),
                    CanelyStack::new(CanelyConfig::default().with_detector(kind)),
                );
            }
            sim.run_until(BitTime::new(400_000));
            let expected = NodeSet::first_n(4);
            for id in 0..4 {
                let app = sim.app::<CanelyStack>(n(id));
                assert_eq!(app.view(), expected, "{kind}: node {id} view");
                assert!(
                    !app.events()
                        .iter()
                        .any(|(_, e)| matches!(e, UpperEvent::FailureNotified(_))),
                    "{kind}: node {id} falsely suspected a live node"
                );
            }
        }
    }

    #[test]
    fn alternative_backends_detect_crashes_within_their_bounds() {
        use crate::fd::DetectorKind;
        for kind in [DetectorKind::Swim, DetectorKind::AddPhi] {
            let config = CanelyConfig::default().with_detector(kind);
            let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
            for id in 0..4 {
                sim.add_node(n(id), CanelyStack::new(config.clone()));
            }
            let crash_at = BitTime::new(250_000);
            sim.schedule_crash(n(2), crash_at);
            sim.run_until(BitTime::new(500_000));
            let expected = NodeSet::first_n(4) - NodeSet::singleton(n(2));
            for id in [0u8, 1, 3] {
                let app = sim.app::<CanelyStack>(n(id));
                assert_eq!(app.view(), expected, "{kind}: node {id} view");
                let failure = app
                    .events()
                    .iter()
                    .find(|(_, e)| matches!(e, UpperEvent::FailureNotified(r) if *r == n(2)))
                    .unwrap_or_else(|| panic!("{kind}: node {id} missed the failure"));
                let bound = config.detection_latency_bound() + BitTime::new(1_000);
                assert!(
                    failure.0 - crash_at <= bound,
                    "{kind}: node {id} detection took {} (bound {})",
                    failure.0 - crash_at,
                    bound
                );
            }
        }
    }

    #[test]
    fn swim_backend_probes_instead_of_heartbeating() {
        use crate::fd::DetectorKind;
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        for id in 0..3 {
            sim.add_node(
                n(id),
                CanelyStack::new(
                    CanelyConfig::default().with_detector(DetectorKind::Swim),
                ),
            );
        }
        sim.schedule_crash(n(2), BitTime::new(250_000));
        sim.run_until(BitTime::new(400_000));
        // Survivors probed the silent node: probe traffic beyond ELS.
        let probes: u64 = (0..2)
            .map(|id| {
                let app = sim.app::<CanelyStack>(n(id));
                app.detector_frames() - app.els_sent()
            })
            .sum();
        assert!(probes > 0, "SWIM must have issued ping frames");
    }

    #[test]
    fn failure_notifications_are_simultaneous_and_consistent() {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        cluster(&mut sim, 4);
        sim.schedule_crash(n(1), BitTime::new(250_000));
        sim.run_until(BitTime::new(500_000));
        let times: Vec<BitTime> = [0u8, 2, 3]
            .iter()
            .map(|&id| {
                sim.app::<CanelyStack>(n(id))
                    .events()
                    .iter()
                    .find_map(|&(t, e)| match e {
                        UpperEvent::FailureNotified(r) if r == n(1) => Some(t),
                        _ => None,
                    })
                    .expect("failure notified")
            })
            .collect();
        // FDA delivers the failure-sign in one frame: all correct
        // nodes learn of the crash at the same delivery instant.
        assert!(times.windows(2).all(|w| w[0] == w[1]), "{times:?}");
    }

    #[test]
    fn late_node_joins_established_cluster() {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        cluster(&mut sim, 3);
        sim.add_node_at(
            n(5),
            CanelyStack::new(CanelyConfig::default()),
            BitTime::new(300_000),
        );
        sim.run_until(BitTime::new(600_000));
        let expected = NodeSet::first_n(3) | NodeSet::singleton(n(5));
        for id in [0u8, 1, 2, 5] {
            assert_eq!(sim.app::<CanelyStack>(n(id)).view(), expected);
        }
        // The joiner monitors everyone.
        assert_eq!(sim.app::<CanelyStack>(n(5)).monitored(), expected);
    }

    #[test]
    fn leave_withdraws_node_and_notifies_it() {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        for id in 0..3 {
            let mut stack = CanelyStack::new(CanelyConfig::default());
            if id == 1 {
                stack = stack.with_leave_at(BitTime::new(300_000));
            }
            sim.add_node(n(id), stack);
        }
        sim.run_until(BitTime::new(600_000));
        let expected = NodeSet::from_bits(0b101);
        for id in [0u8, 2] {
            assert_eq!(sim.app::<CanelyStack>(n(id)).view(), expected);
        }
        let leaver = sim.app::<CanelyStack>(n(1));
        assert!(leaver.is_out_of_service());
        assert!(leaver
            .events()
            .iter()
            .any(|(_, e)| matches!(e, UpperEvent::LeftService)));
        // No spurious failure notifications for a clean leave.
        for id in [0u8, 2] {
            assert!(!sim
                .app::<CanelyStack>(n(id))
                .events()
                .iter()
                .any(|(_, e)| matches!(e, UpperEvent::FailureNotified(_))));
        }
    }

    #[test]
    fn inconsistent_life_sign_with_sender_crash_still_detected_consistently() {
        // The LCAN2 caveat scenario of Sec. 6.1: node 2's last
        // life-sign reaches only node 0, then node 2 crashes. FDA must
        // still produce a consistent failure notification everywhere.
        let mut faults = FaultPlan::none();
        faults.push_scripted(ScriptedFault {
            matcher: FaultMatcher {
                msg_type: Some(MsgType::Els),
                mid_node: Some(n(2)),
                not_before: BitTime::new(250_000),
                ..FaultMatcher::default()
            },
            effect: FaultEffect::InconsistentOmission {
                accepters: AccepterSpec::Exactly(NodeSet::singleton(n(0))),
                crash_sender: true,
            },
            count: 1,
        });
        let mut sim = Simulator::new(BusConfig::default(), faults);
        cluster(&mut sim, 4);
        sim.run_until(BitTime::new(600_000));
        let expected = NodeSet::first_n(4) - NodeSet::singleton(n(2));
        for id in [0u8, 1, 3] {
            let app = sim.app::<CanelyStack>(n(id));
            assert_eq!(app.view(), expected, "node {id}");
            assert!(app
                .events()
                .iter()
                .any(|(_, e)| matches!(e, UpperEvent::FailureNotified(r) if *r == n(2))));
        }
    }

    #[test]
    fn obs_log_captures_crash_detection_chain() {
        use crate::obs::{ObsLog, ProtocolEvent, Snapshot};
        let log = ObsLog::new();
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        for id in 0..4 {
            sim.add_node(
                n(id),
                CanelyStack::new(CanelyConfig::default()).with_obs(log.sink()),
            );
        }
        let crash_at = BitTime::new(250_000);
        log.record(crash_at, n(2), ProtocolEvent::NodeCrashed);
        sim.schedule_crash(n(2), crash_at);
        sim.run_until(BitTime::new(500_000));

        let events = log.events();
        let position = |pred: &dyn Fn(&ProtocolEvent) -> bool| {
            events
                .iter()
                .position(|e| pred(&e.event))
                .expect("event present in trace")
        };
        // The causal chain appears in order: crash marker, suspicion,
        // FDA invocation, delivery, notification, view change.
        let crash = position(&|e| matches!(e, ProtocolEvent::NodeCrashed));
        let suspect =
            position(&|e| matches!(e, ProtocolEvent::SuspectRaised { suspect } if *suspect == n(2)));
        let invoked =
            position(&|e| matches!(e, ProtocolEvent::FdaInvoked { failed } if *failed == n(2)));
        let delivered =
            position(&|e| matches!(e, ProtocolEvent::FdaDelivered { failed } if *failed == n(2)));
        let notified =
            position(&|e| matches!(e, ProtocolEvent::FailureNotified { failed } if *failed == n(2)));
        let changed = position(
            &|e| matches!(e, ProtocolEvent::ViewChanged { view, .. } if !view.contains(n(2))),
        );
        assert!(crash < suspect && suspect < invoked, "{crash} {suspect} {invoked}");
        assert!(invoked < delivered && delivered < notified, "{delivered} {notified}");
        assert!(notified < changed, "{notified} {changed}");

        // Causal threading: the suspicion was triggered by the
        // surveillance expiry, which links back to its (re)arming; the
        // FDA delivery was triggered by a bus transaction.
        let Cause::Event { seq } = events[suspect].cause else {
            panic!("suspicion must be event-caused: {:?}", events[suspect]);
        };
        let expiry = &events[seq as usize];
        assert!(
            matches!(
                expiry.event,
                ProtocolEvent::TimerExpired { timer: ObsTimer::Surveillance(r) } if r == n(2)
            ),
            "{expiry:?}"
        );
        let Cause::Event { seq: armed } = expiry.cause else {
            panic!("expiry must link to its arming: {expiry:?}");
        };
        assert!(
            matches!(
                events[armed as usize].event,
                ProtocolEvent::TimerArmed { timer: ObsTimer::Surveillance(r), .. } if r == n(2)
            ),
            "{:?}",
            events[armed as usize]
        );
        assert!(
            matches!(events[delivered].cause, Cause::Bus { .. }),
            "{:?}",
            events[delivered]
        );
        assert_eq!(events[crash].cause, Cause::Boot);

        // Metrics derived from the same log: a detection-latency sample
        // per surviving node, within the analytic bound.
        let snapshot = Snapshot::compute(&events, None);
        assert_eq!(snapshot.detection_latency.count(), 3);
        let bound =
            CanelyConfig::default().detection_latency_bound() + BitTime::new(1_000);
        assert!(snapshot.detection_latency.max().unwrap() <= bound.as_u64());
        assert!(snapshot.view_change_latency.count() >= 3);
        assert_eq!(snapshot.totals.crashes, 1);
    }

    #[test]
    fn stack_without_obs_records_nothing() {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        cluster(&mut sim, 3);
        sim.run_until(SETTLED);
        // No sink installed: the default path must not have grown any
        // observable state (events are only in the per-stack journal).
        for id in 0..3 {
            assert!(!sim.app::<CanelyStack>(n(id)).obs.is_enabled());
        }
    }

    #[test]
    fn deterministic_replay_of_full_stack() {
        let run = || {
            let mut sim = Simulator::new(
                BusConfig::default(),
                FaultPlan::seeded(11).with_consistent_rate(0.05),
            );
            cluster(&mut sim, 4);
            sim.schedule_crash(n(3), BitTime::new(300_000));
            sim.run_until(BitTime::new(600_000));
            (0..3)
                .map(|id| sim.app::<CanelyStack>(n(id)).events().to_vec())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
