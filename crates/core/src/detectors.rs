//! Alternative failure-detector backends behind the
//! [`FailureDetector`] seam.
//!
//! The paper's surveillance-timer protocol
//! ([`crate::SurveillanceDetector`]) is one point in the failure
//! detection design space. This module adds two classic alternatives
//! so the campaign engine can measure the trade-offs under identical
//! fault matrices (see `docs/DETECTORS.md` for the shootout):
//!
//! * [`SwimDetector`] — SWIM-style round-based probing with indirect
//!   pings (Das, Gupta & Motivala, DSN 2002): silence triggers a
//!   direct ping; an unanswered ping escalates to a *ping-req* that
//!   enlists helper nodes before the target is suspected. On a
//!   broadcast bus the indirect phase acts as a redundancy layer
//!   against *inconsistent omissions* — a helper that received the
//!   life-sign the prober missed re-probes the target, giving it
//!   another chance to answer before suspicion.
//! * [`AddPhiDetector`] — an ADD-channel-style eventually-perfect
//!   (◇P) heartbeat detector with adaptive timeouts (after Kumar &
//!   Welch): unconditional periodic life-signs, and per-node timeouts
//!   that stretch with the worst observed inter-arrival gap (bounded
//!   by twice the static floor, which keeps detection latency
//!   bounded).
//!
//! Both backends reuse the stack's existing plumbing: per-node timers
//! carry the [`TimerOwner::Surveillance`] tag (so causal timer
//! tracing works unchanged), probe rounds tick on
//! [`TimerOwner::DetectorPeriod`], and the probe wire protocol rides
//! on [`can_types::MsgType::Ping`] remote frames.

use crate::fd::{els_mid, DetectorMetrics, DetectorTimer, FailureDetector, FdAction};
use crate::obs::{EventSink, ObsTimer, ProtocolEvent};
use crate::tags::{detector_skew as skew, ping_mid, TimerOwner, PING_DIRECT, PING_REQ, SWIM_HELPERS};
use can_controller::{Ctx, TimerId};
use can_types::{BitTime, Mid, NodeId, NodeSet};
use std::collections::HashMap;

/// Phase of an in-flight SWIM probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbePhase {
    /// Waiting for the target to answer a direct ping.
    Direct,
    /// Direct ping unanswered; waiting out the indirect (ping-req)
    /// round.
    Indirect,
}

/// An in-flight probe of one monitored node.
#[derive(Debug)]
struct Probe {
    phase: ProbePhase,
    tid: TimerId,
}

/// SWIM-style failure detector: round-based probing with indirect
/// pings.
///
/// Every `Th` the period timer ticks and the node probes each
/// monitored peer it has not heard from for at least `Th`: a direct
/// [`can_types::MsgType::Ping`] remote frame asks the target to emit a life-sign
/// (any node answers pings addressed to it with an ELS broadcast,
/// which — the bus being a broadcast medium — simultaneously
/// acquits it to every other prober). If the direct probe is not
/// answered within `Ttd`, a *ping-req* enlists up to `SWIM_HELPERS`
/// (= 3) helper nodes, each of which re-probes the target;
/// only when the indirect round (`2·Ttd`) also elapses in silence is
/// the target suspected and FDA invoked.
///
/// Unlike the surveillance backend the node issues **no periodic
/// life-signs of its own** — it answers probes instead — so in a
/// quiet, healthy network the detector consumes almost no bandwidth,
/// at the price of a longer worst-case detection latency (up to two
/// probe periods plus three probe-phase timeouts; see
/// [`crate::DetectorKind::extra_detection_margin`]).
#[derive(Debug)]
pub struct SwimDetector {
    /// `Th`: probe period, and the silence threshold for probing.
    th: BitTime,
    /// `Ttd`: transmission-delay margin for one probe phase.
    ttd: BitTime,
    /// The set of nodes this detector watches.
    monitored: NodeSet,
    /// Last time any frame of each monitored node was observed.
    last_heard: HashMap<NodeId, BitTime>,
    /// In-flight probes, keyed by target.
    probes: HashMap<NodeId, Probe>,
    /// The protocol period timer.
    period: Option<TimerId>,
    /// Life-signs issued (all in answer to probes).
    els_sent: u64,
    /// Probe frames issued (direct pings, ping-reqs, helper re-pings).
    pings_sent: u64,
    /// Structured-event sink (disabled by default).
    obs: EventSink,
    /// Live-telemetry counters (disabled by default).
    metrics: DetectorMetrics,
}

impl SwimDetector {
    /// Creates a detector with probe period `th` and per-phase
    /// transmission-delay margin `ttd`.
    pub fn new(th: BitTime, ttd: BitTime) -> Self {
        SwimDetector {
            th,
            ttd,
            monitored: NodeSet::EMPTY,
            last_heard: HashMap::new(),
            probes: HashMap::new(),
            period: None,
            els_sent: 0,
            pings_sent: 0,
            obs: EventSink::disabled(),
            metrics: DetectorMetrics::default(),
        }
    }

    /// Probe frames issued by this node.
    pub fn pings_sent(&self) -> u64 {
        self.pings_sent
    }

    fn arm_probe(&mut self, ctx: &mut Ctx<'_>, target: NodeId, phase: ProbePhase) {
        let duration = match phase {
            ProbePhase::Direct => self.ttd,
            ProbePhase::Indirect => self.ttd * 2,
        } + skew(ctx.me());
        let tid = ctx.start_alarm(duration, TimerOwner::Surveillance(target).encode());
        self.obs.emit(
            ctx.now(),
            ctx.me(),
            ProtocolEvent::TimerArmed {
                timer: ObsTimer::Surveillance(target),
                deadline: ctx.now() + duration,
            },
        );
        self.probes.insert(target, Probe { phase, tid });
    }

    fn cancel_probe(&mut self, ctx: &mut Ctx<'_>, target: NodeId) {
        if let Some(probe) = self.probes.remove(&target) {
            ctx.cancel_alarm(probe.tid);
        }
    }

    fn send_ping(&mut self, ctx: &mut Ctx<'_>, subkind: u16, target: NodeId) {
        ctx.can_rtr_req(ping_mid(subkind, ctx.me(), target));
        self.pings_sent += 1;
        self.metrics.probes.inc();
    }

    /// Whether this node is one of the up-to-[`SWIM_HELPERS`] helpers
    /// (lowest eligible node ids) enlisted by a ping-req.
    fn is_helper(&self, me: NodeId, prober: NodeId, target: NodeId) -> bool {
        let eligible = self.monitored - NodeSet::from_iter([prober, target]);
        eligible.contains(me)
            && eligible.iter().take(SWIM_HELPERS).any(|n| n == me)
    }
}

impl FailureDetector for SwimDetector {
    fn set_sink(&mut self, sink: EventSink) {
        self.obs = sink;
    }

    fn set_metrics(&mut self, metrics: DetectorMetrics) {
        self.metrics = metrics;
    }

    fn start(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        self.monitored.insert(r);
        self.last_heard.insert(r, ctx.now());
        if self.period.is_none() {
            // First period staggered per node rank so the fleet's
            // probe rounds do not tick in lock-step.
            let tid = ctx.start_alarm(self.th + skew(ctx.me()), TimerOwner::DetectorPeriod.encode());
            self.period = Some(tid);
        }
    }

    fn stop(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        self.monitored.remove(r);
        self.last_heard.remove(&r);
        self.cancel_probe(ctx, r);
    }

    fn stop_all(&mut self, ctx: &mut Ctx<'_>) {
        for (_, probe) in self.probes.drain() {
            ctx.cancel_alarm(probe.tid);
        }
        if let Some(tid) = self.period.take() {
            ctx.cancel_alarm(tid);
        }
        self.monitored = NodeSet::EMPTY;
        self.last_heard.clear();
    }

    fn on_activity(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        if !self.monitored.contains(r) {
            return;
        }
        self.last_heard.insert(r, ctx.now());
        // Any sign of life acquits an in-flight probe of `r`.
        self.cancel_probe(ctx, r);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: DetectorTimer) -> Option<FdAction> {
        match timer {
            DetectorTimer::Period => {
                let tid = ctx.start_alarm(self.th, TimerOwner::DetectorPeriod.encode());
                self.period = Some(tid);
                let me = ctx.me();
                let now = ctx.now();
                for r in self.monitored.iter().filter(|&r| r != me) {
                    let heard = self.last_heard.get(&r).copied().unwrap_or(BitTime::ZERO);
                    if now.saturating_sub(heard) < self.th {
                        continue;
                    }
                    match self.probes.get(&r).map(|p| p.phase) {
                        None => {
                            self.send_ping(ctx, PING_DIRECT, r);
                            self.arm_probe(ctx, r, ProbePhase::Direct);
                        }
                        // Keep re-pinging through a long indirect
                        // round: extra chances against omissions, at
                        // one frame per period.
                        Some(ProbePhase::Indirect) => self.send_ping(ctx, PING_DIRECT, r),
                        Some(ProbePhase::Direct) => {}
                    }
                }
                None
            }
            DetectorTimer::Node(r) => {
                if !self.monitored.contains(r) {
                    self.probes.remove(&r);
                    return None;
                }
                let probe = self.probes.remove(&r)?;
                match probe.phase {
                    ProbePhase::Direct => {
                        // Escalate: enlist helpers via ping-req.
                        self.send_ping(ctx, PING_REQ, r);
                        self.arm_probe(ctx, r, ProbePhase::Indirect);
                        ctx.journal(format_args!(
                            "FD/swim: no answer from {r} — indirect probe"
                        ));
                        None
                    }
                    ProbePhase::Indirect => {
                        self.obs
                            .emit(ctx.now(), ctx.me(), ProtocolEvent::SuspectRaised { suspect: r });
                        self.metrics.suspicions.inc();
                        ctx.journal(format_args!(
                            "FD/swim: node {r} silent through indirect probes — suspecting"
                        ));
                        Some(FdAction::Suspect(r))
                    }
                }
            }
        }
    }

    fn on_fda_nty(&mut self, ctx: &mut Ctx<'_>, r: NodeId) -> FdAction {
        self.monitored.remove(r);
        self.last_heard.remove(&r);
        self.cancel_probe(ctx, r);
        FdAction::Notify(r)
    }

    fn on_detector_frame(&mut self, ctx: &mut Ctx<'_>, mid: Mid) {
        let subkind = mid.reference() >> 8;
        let prober_bits = mid.reference() & 0xFF;
        if prober_bits >= 64 {
            return;
        }
        let prober = NodeId::new(prober_bits as u8);
        let target = mid.node();
        // A probe frame is itself a sign of life of the prober.
        self.on_activity(ctx, prober);
        let me = ctx.me();
        match subkind {
            PING_DIRECT | PING_REQ if target == me => {
                // Answer with a life-sign broadcast: its reception
                // acquits this node at every prober at once.
                ctx.can_rtr_req(els_mid(me));
                self.els_sent += 1;
                self.obs.emit(ctx.now(), me, ProtocolEvent::LifeSignSent);
                self.metrics.lifesigns.inc();
            }
            PING_REQ
                if prober != me
                    && self.monitored.contains(target)
                    && !self.probes.contains_key(&target)
                    && self.is_helper(me, prober, target) =>
            {
                // Helper relay: re-probe the target on the prober's
                // behalf (fire-and-forget — the prober keeps the
                // deadline).
                self.send_ping(ctx, PING_DIRECT, target);
            }
            _ => {}
        }
    }

    fn monitored(&self) -> NodeSet {
        self.monitored
    }

    fn els_sent(&self) -> u64 {
        self.els_sent
    }

    fn control_frames(&self) -> u64 {
        self.els_sent + self.pings_sent
    }
}

/// ADD-channel-style ◇P heartbeat detector with adaptive timeouts
/// (after Kumar & Welch).
///
/// The local node broadcasts an **unconditional** life-sign every
/// `Th` — implicit heartbeats never suppress it, modelling a
/// dedicated heartbeat stream over an ADD channel. For each remote
/// node the timeout adapts to the channel actually observed: it is
/// the worst inter-arrival gap seen so far plus `Ttd`, clamped
/// between the static floor `Th + Ttd` (never *more* suspicious than
/// the surveillance detector) and twice that floor (so detection
/// latency stays bounded — the ◇P promise is made *eventually
/// perfect within a bound* rather than merely eventual).
///
/// QoS profile: the steadiest bandwidth consumer of the three
/// backends (one ELS per node per `Th`, traffic or not), in exchange
/// for a detector that self-tunes its false-suspicion margin to
/// observed jitter.
#[derive(Debug)]
pub struct AddPhiDetector {
    /// `Th`: heartbeat period.
    th: BitTime,
    /// `Ttd`: transmission-delay margin.
    ttd: BitTime,
    /// Armed per-node timers (local heartbeat + remote timeouts).
    timers: HashMap<NodeId, TimerId>,
    /// Last observed activity per remote node.
    last_heard: HashMap<NodeId, BitTime>,
    /// Worst observed inter-arrival gap per remote node.
    max_gap: HashMap<NodeId, BitTime>,
    /// The set of nodes this detector watches.
    monitored: NodeSet,
    /// Life-signs issued.
    els_sent: u64,
    /// Structured-event sink (disabled by default).
    obs: EventSink,
    /// Live-telemetry counters (disabled by default).
    metrics: DetectorMetrics,
}

impl AddPhiDetector {
    /// Creates a detector with heartbeat period `th` and
    /// transmission-delay margin `ttd`.
    pub fn new(th: BitTime, ttd: BitTime) -> Self {
        AddPhiDetector {
            th,
            ttd,
            timers: HashMap::new(),
            last_heard: HashMap::new(),
            max_gap: HashMap::new(),
            monitored: NodeSet::EMPTY,
            els_sent: 0,
            obs: EventSink::disabled(),
            metrics: DetectorMetrics::default(),
        }
    }

    /// The current adaptive timeout for remote node `r`:
    /// `clamp(worst observed gap + Ttd, Th + Ttd, 2·(Th + Ttd))`.
    pub fn timeout_for(&self, r: NodeId) -> BitTime {
        let floor = self.th + self.ttd;
        let adaptive = self.max_gap.get(&r).copied().unwrap_or(BitTime::ZERO) + self.ttd;
        adaptive.max(floor).min(floor * 2)
    }

    fn arm(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        if let Some(old) = self.timers.remove(&r) {
            ctx.cancel_alarm(old);
        }
        let duration = if r == ctx.me() {
            self.th
        } else {
            self.timeout_for(r) + skew(ctx.me())
        };
        let tid = ctx.start_alarm(duration, TimerOwner::Surveillance(r).encode());
        self.obs.emit(
            ctx.now(),
            ctx.me(),
            ProtocolEvent::TimerArmed {
                timer: ObsTimer::Surveillance(r),
                deadline: ctx.now() + duration,
            },
        );
        self.timers.insert(r, tid);
    }
}

impl FailureDetector for AddPhiDetector {
    fn set_sink(&mut self, sink: EventSink) {
        self.obs = sink;
    }

    fn set_metrics(&mut self, metrics: DetectorMetrics) {
        self.metrics = metrics;
    }

    fn start(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        self.monitored.insert(r);
        self.last_heard.insert(r, ctx.now());
        self.max_gap.insert(r, BitTime::ZERO);
        self.arm(ctx, r);
    }

    fn stop(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        self.monitored.remove(r);
        self.last_heard.remove(&r);
        self.max_gap.remove(&r);
        if let Some(tid) = self.timers.remove(&r) {
            ctx.cancel_alarm(tid);
        }
    }

    fn stop_all(&mut self, ctx: &mut Ctx<'_>) {
        for (_, tid) in self.timers.drain() {
            ctx.cancel_alarm(tid);
        }
        self.monitored = NodeSet::EMPTY;
        self.last_heard.clear();
        self.max_gap.clear();
    }

    fn on_activity(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        if !self.monitored.contains(r) || r == ctx.me() {
            // The local heartbeat is unconditional: own activity never
            // postpones it.
            return;
        }
        let now = ctx.now();
        let gap = now.saturating_sub(self.last_heard.get(&r).copied().unwrap_or(now));
        self.last_heard.insert(r, now);
        let worst = self.max_gap.entry(r).or_insert(BitTime::ZERO);
        *worst = (*worst).max(gap);
        self.arm(ctx, r);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: DetectorTimer) -> Option<FdAction> {
        let DetectorTimer::Node(r) = timer else {
            return None; // no period tick in this backend
        };
        if !self.monitored.contains(r) {
            return None;
        }
        self.timers.remove(&r);
        if r == ctx.me() {
            ctx.can_rtr_req(els_mid(r));
            self.els_sent += 1;
            self.obs.emit(ctx.now(), ctx.me(), ProtocolEvent::LifeSignSent);
            self.metrics.lifesigns.inc();
            ctx.journal("FD/add: broadcasting heartbeat life-sign");
            // Unconditional cadence: re-arm immediately rather than
            // waiting for the life-sign to echo back.
            self.arm(ctx, r);
            None
        } else {
            self.obs
                .emit(ctx.now(), ctx.me(), ProtocolEvent::SuspectRaised { suspect: r });
            self.metrics.suspicions.inc();
            ctx.journal(format_args!(
                "FD/add: node {r} exceeded adaptive timeout — suspecting"
            ));
            Some(FdAction::Suspect(r))
        }
    }

    fn on_fda_nty(&mut self, ctx: &mut Ctx<'_>, r: NodeId) -> FdAction {
        self.monitored.remove(r);
        self.last_heard.remove(&r);
        self.max_gap.remove(&r);
        if let Some(tid) = self.timers.remove(&r) {
            ctx.cancel_alarm(tid);
        }
        FdAction::Notify(r)
    }

    fn monitored(&self) -> NodeSet {
        self.monitored
    }

    fn els_sent(&self) -> u64 {
        self.els_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_controller::{Controller, JournalEntry, TimerWheel};

    struct Harness {
        ctl: Controller,
        timers: TimerWheel,
        journal: Vec<JournalEntry>,
        me: NodeId,
        now: BitTime,
    }

    impl Harness {
        fn new(me: u8) -> Self {
            Harness {
                ctl: Controller::new(),
                timers: TimerWheel::new(),
                journal: Vec::new(),
                me: NodeId::new(me),
                now: BitTime::ZERO,
            }
        }

        fn ctx<R>(&mut self, f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
            let mut ctx = Ctx::new(
                self.now,
                self.me,
                &mut self.ctl,
                &mut self.timers,
                &mut self.journal,
                false,
            );
            f(&mut ctx)
        }

        fn drain_frames(&mut self) -> Vec<Mid> {
            let mut mids = Vec::new();
            while let Some(frame) = self.ctl.head().copied() {
                mids.push(Mid::from_can_id(frame.id()).unwrap());
                self.ctl.confirm(&frame);
            }
            mids
        }
    }

    const TH: BitTime = BitTime::new(5_000);
    const TTD: BitTime = BitTime::new(2_500);

    fn swim() -> SwimDetector {
        SwimDetector::new(TH, TTD)
    }

    fn add_phi() -> AddPhiDetector {
        AddPhiDetector::new(TH, TTD)
    }

    fn n(id: u8) -> NodeId {
        NodeId::new(id)
    }

    // ---- SWIM ----

    #[test]
    fn swim_idle_healthy_network_sends_nothing() {
        let mut h = Harness::new(0);
        let mut d = swim();
        h.ctx(|ctx| {
            d.start(ctx, n(0));
            d.start(ctx, n(1));
        });
        // Only the period timer is armed; no frames and no life-signs.
        assert_eq!(h.timers.len(), 1);
        assert_eq!(h.ctl.queue_len(), 0);
        // Fresh activity keeps the first round quiet too.
        h.now = BitTime::new(4_000);
        h.ctx(|ctx| d.on_activity(ctx, n(1)));
        h.now = BitTime::new(5_000);
        h.ctx(|ctx| d.on_timer(ctx, DetectorTimer::Period));
        assert_eq!(h.ctl.queue_len(), 0);
        assert_eq!(d.control_frames(), 0);
    }

    #[test]
    fn swim_probes_stale_node_then_escalates_then_suspects() {
        let mut h = Harness::new(0);
        let mut d = swim();
        h.ctx(|ctx| {
            d.start(ctx, n(0));
            d.start(ctx, n(2));
        });
        // n2 silent for a full period: the round probes it.
        h.now = BitTime::new(5_000);
        assert_eq!(h.ctx(|ctx| d.on_timer(ctx, DetectorTimer::Period)), None);
        assert_eq!(h.drain_frames(), vec![ping_mid(PING_DIRECT, n(0), n(2))]);
        // Direct phase expires unanswered → ping-req.
        h.now = BitTime::new(7_500);
        assert_eq!(
            h.ctx(|ctx| d.on_timer(ctx, DetectorTimer::Node(n(2)))),
            None
        );
        assert_eq!(h.drain_frames(), vec![ping_mid(PING_REQ, n(0), n(2))]);
        // Indirect phase expires unanswered → suspect.
        h.now = BitTime::new(12_500);
        assert_eq!(
            h.ctx(|ctx| d.on_timer(ctx, DetectorTimer::Node(n(2)))),
            Some(FdAction::Suspect(n(2)))
        );
        assert_eq!(d.pings_sent(), 2);
    }

    #[test]
    fn swim_activity_acquits_inflight_probe() {
        let mut h = Harness::new(0);
        let mut d = swim();
        h.ctx(|ctx| {
            d.start(ctx, n(0));
            d.start(ctx, n(2));
        });
        h.now = BitTime::new(5_000);
        h.timers.pop_due(h.now).expect("period tick due");
        h.ctx(|ctx| d.on_timer(ctx, DetectorTimer::Period));
        assert_eq!(h.timers.len(), 2, "period + probe deadline");
        // The target answers (e.g. its ELS arrives): probe cancelled,
        // and the now-stale expiry would be squelched anyway.
        h.now = BitTime::new(6_000);
        h.ctx(|ctx| d.on_activity(ctx, n(2)));
        assert_eq!(h.timers.len(), 1, "probe deadline cancelled");
        h.now = BitTime::new(7_500);
        assert_eq!(
            h.ctx(|ctx| d.on_timer(ctx, DetectorTimer::Node(n(2)))),
            None
        );
    }

    #[test]
    fn swim_answers_pings_with_a_life_sign() {
        let mut h = Harness::new(2);
        let mut d = swim();
        h.ctx(|ctx| {
            d.start(ctx, n(1));
            d.start(ctx, n(2));
        });
        h.now = BitTime::new(6_000);
        h.ctx(|ctx| d.on_detector_frame(ctx, ping_mid(PING_DIRECT, n(1), n(2))));
        assert_eq!(h.drain_frames(), vec![els_mid(n(2))]);
        assert_eq!(d.els_sent(), 1);
        // The ping also counted as activity of the prober.
        h.ctx(|ctx| d.on_timer(ctx, DetectorTimer::Period));
        assert!(!h.drain_frames().contains(&ping_mid(PING_DIRECT, n(2), n(1))));
    }

    #[test]
    fn swim_helper_relays_ping_req() {
        // Node 1 hears node 0's ping-req for node 3 and, as one of the
        // lowest eligible ids, re-probes node 3 on its behalf.
        let mut h = Harness::new(1);
        let mut d = swim();
        h.ctx(|ctx| {
            for id in 0..4 {
                d.start(ctx, n(id));
            }
        });
        h.now = BitTime::new(7_500);
        h.ctx(|ctx| d.on_detector_frame(ctx, ping_mid(PING_REQ, n(0), n(3))));
        assert_eq!(h.drain_frames(), vec![ping_mid(PING_DIRECT, n(1), n(3))]);
        // A high-rank node (outside the helper set) stays quiet.
        let mut h2 = Harness::new(9);
        let mut d2 = swim();
        h2.ctx(|ctx| {
            for id in [0, 1, 2, 3, 4, 9] {
                d2.start(ctx, n(id));
            }
        });
        h2.now = BitTime::new(7_500);
        h2.ctx(|ctx| d2.on_detector_frame(ctx, ping_mid(PING_REQ, n(0), n(3))));
        assert_eq!(h2.ctl.queue_len(), 0);
    }

    #[test]
    fn swim_stop_all_cancels_period_and_probes() {
        let mut h = Harness::new(0);
        let mut d = swim();
        h.ctx(|ctx| {
            d.start(ctx, n(0));
            d.start(ctx, n(2));
        });
        h.now = BitTime::new(5_000);
        h.timers.pop_due(h.now).expect("period tick due");
        h.ctx(|ctx| d.on_timer(ctx, DetectorTimer::Period));
        assert!(h.timers.len() >= 2);
        h.ctx(|ctx| d.stop_all(ctx));
        assert!(h.timers.is_empty());
        assert_eq!(d.monitored(), NodeSet::EMPTY);
    }

    // ---- ADD ◇P ----

    #[test]
    fn add_phi_heartbeat_is_unconditional() {
        let mut h = Harness::new(0);
        let mut d = add_phi();
        h.ctx(|ctx| d.start(ctx, n(0)));
        assert_eq!(h.timers.next_deadline(), Some(TH));
        // Own activity does NOT postpone the heartbeat (contrast with
        // the surveillance detector's suppression rule).
        h.now = BitTime::new(4_000);
        h.ctx(|ctx| d.on_activity(ctx, n(0)));
        assert_eq!(h.timers.next_deadline(), Some(TH));
        // Expiry broadcasts and re-arms immediately.
        h.now = BitTime::new(5_000);
        h.timers.pop_due(h.now).expect("heartbeat due");
        assert_eq!(
            h.ctx(|ctx| d.on_timer(ctx, DetectorTimer::Node(n(0)))),
            None
        );
        assert_eq!(d.els_sent(), 1);
        assert_eq!(h.timers.next_deadline(), Some(BitTime::new(10_000)));
    }

    #[test]
    fn add_phi_timeout_adapts_to_observed_gaps_with_cap() {
        let mut h = Harness::new(0);
        let mut d = add_phi();
        h.ctx(|ctx| d.start(ctx, n(2)));
        let floor = TH + TTD;
        assert_eq!(d.timeout_for(n(2)), floor);
        // A 6 ms gap stretches the timeout to gap + Ttd.
        h.now = BitTime::new(6_000);
        h.ctx(|ctx| d.on_activity(ctx, n(2)));
        assert_eq!(d.timeout_for(n(2)), BitTime::new(8_500));
        assert_eq!(h.timers.next_deadline(), Some(BitTime::new(14_500)));
        // A huge gap is clamped at twice the floor.
        h.now = BitTime::new(60_000);
        h.ctx(|ctx| d.on_activity(ctx, n(2)));
        assert_eq!(d.timeout_for(n(2)), floor * 2);
    }

    #[test]
    fn add_phi_remote_expiry_suspects() {
        let mut h = Harness::new(0);
        let mut d = add_phi();
        h.ctx(|ctx| d.start(ctx, n(2)));
        h.now = BitTime::new(7_500);
        assert_eq!(
            h.ctx(|ctx| d.on_timer(ctx, DetectorTimer::Node(n(2)))),
            Some(FdAction::Suspect(n(2)))
        );
        // FDA agreement then releases the state.
        let action = h.ctx(|ctx| d.on_fda_nty(ctx, n(2)));
        assert_eq!(action, FdAction::Notify(n(2)));
        assert!(!d.monitored().contains(n(2)));
    }

    #[test]
    fn add_phi_observer_skew_spreads_remote_deadlines() {
        let mut h = Harness::new(3);
        let mut d = add_phi();
        h.ctx(|ctx| d.start(ctx, n(2)));
        assert_eq!(
            h.timers.next_deadline(),
            Some(TH + TTD + BitTime::new(3 * 512))
        );
    }
}
