//! Stack-wide observability: structured protocol events, a merged
//! machine-readable trace and derived metrics.
//!
//! Every protocol entity of the CANELy stack (failure detection, FDA,
//! RHA, membership) can be handed an [`EventSink`] — a cheap, cloneable
//! handle onto a shared, time-ordered event log ([`ObsLog`]). When no
//! sink is installed the instrumentation is free: emitting degrades to
//! a branch on an empty `Option` and never allocates (verified by an
//! allocation-counting test in the `bench` crate).
//!
//! The building blocks:
//!
//! * [`ProtocolEvent`] — one structured record per protocol-visible
//!   occurrence: timer arm/expiry, life-sign tx/rx, FDA invocation /
//!   sign exchange / delivery, RHV snapshots and agreement, membership
//!   cycles and view installs, plus externally recorded node crash /
//!   restart markers.
//! * [`ObsLog`] / [`EventSink`] — the shared log and the per-entity
//!   handle. All nodes of a simulation share **one** log, so a single
//!   export captures the whole run.
//! * [`export_jsonl`] — renders the protocol events, merged with the
//!   bus-level [`BusTrace`], as one time-ordered
//!   JSON-Lines document (schema: `docs/TRACE_SCHEMA.md`).
//! * [`Snapshot`] — metrics derived by folding over the event log:
//!   per-node and global counters plus latency histograms
//!   (failure-detection latency, view-change latency, RHA broadcasts
//!   per agreement) and bus utilization.
//!
//! The event log is the single source of truth: metrics are *derived*
//! from it, never counted separately, so the numbers reported by the
//! CLI and the benches are exactly the numbers visible in the trace.

use can_bus::{BusStats, BusTrace};
use can_types::{BitTime, Mid, NodeId, NodeSet, MAX_NODES};
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Protocol timers visible in the trace (the application-traffic and
/// scripting alarms of the harness are deliberately excluded — they
/// are workload, not protocol).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsTimer {
    /// Failure-detection surveillance timer for a node.
    Surveillance(NodeId),
    /// RHA maximum-termination alarm (`Trha`).
    RhaTermination,
    /// Membership cycle / join-wait alarm (`Tm` / `Tjoin-wait`).
    MembershipCycle,
}

impl std::fmt::Display for ObsTimer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsTimer::Surveillance(r) => write!(f, "surveillance:{}", r.as_u8()),
            ObsTimer::RhaTermination => f.write_str("rha-termination"),
            ObsTimer::MembershipCycle => f.write_str("membership-cycle"),
        }
    }
}

/// One structured protocol occurrence, as emitted by the stack's
/// entities. See `docs/TRACE_SCHEMA.md` for the wire (JSONL) schema of
/// every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// A protocol timer was (re)armed; `deadline` is its expiry instant.
    TimerArmed {
        /// The owning protocol timer.
        timer: ObsTimer,
        /// Absolute expiry instant.
        deadline: BitTime,
    },
    /// A protocol timer expired and is about to be handled.
    TimerExpired {
        /// The owning protocol timer.
        timer: ObsTimer,
    },
    /// The local node broadcast an explicit life-sign (Fig. 8, f08).
    LifeSignSent,
    /// An explicit life-sign of node `of` was observed on the bus.
    LifeSignObserved {
        /// Whose life-sign it was.
        of: NodeId,
    },
    /// A remote surveillance timer expired: `suspect` is presumed
    /// crashed and FDA is about to be invoked (Fig. 8, f10).
    SuspectRaised {
        /// The node under suspicion.
        suspect: NodeId,
    },
    /// `fd-can.nty`: the failure of `failed` was consistently agreed
    /// and delivered to the membership layer (Fig. 8, f15).
    FailureNotified {
        /// The failed node.
        failed: NodeId,
    },
    /// `fda-can.req(r)`: FDA dissemination of a failure was invoked
    /// locally (Fig. 6, s00).
    FdaInvoked {
        /// The failed node.
        failed: NodeId,
    },
    /// A failure-sign transmit request was queued. `diffusion` is
    /// `false` for the original request (s03) and `true` for the
    /// eager-diffusion echo of a received first copy (r06).
    FdaSignSent {
        /// The failed node.
        failed: NodeId,
        /// Whether this is a diffusion echo rather than the original.
        diffusion: bool,
    },
    /// A failure-sign copy arrived (Fig. 6, r01).
    FdaSignReceived {
        /// The failed node.
        failed: NodeId,
        /// Whether this was a duplicate (not the first copy).
        duplicate: bool,
    },
    /// First failure-sign copy: `fda-can.nty(failed)` delivered
    /// upstairs (Fig. 6, r03).
    FdaDelivered {
        /// The failed node.
        failed: NodeId,
    },
    /// An RHA execution started at this node (Fig. 7, a00–a08).
    RhaStarted {
        /// The initial local vector proposal.
        proposal: NodeSet,
        /// Whether the node started as a full member (a03) or adopted
        /// the received vector verbatim (a05).
        full_member: bool,
    },
    /// An RHV signal carrying `vector` was queued for transmission.
    RhvSent {
        /// The broadcast vector.
        vector: NodeSet,
    },
    /// An RHV signal was received (own transmissions included).
    RhvReceived {
        /// The transmitter of the signal.
        from: NodeId,
        /// The received vector.
        vector: NodeSet,
    },
    /// The local vector was narrowed by intersection and re-broadcast
    /// (Fig. 7, r04–r07).
    RhaNarrowed {
        /// The narrowed local vector.
        vector: NodeSet,
    },
    /// `j` copies of the local value circulate: the pending own signal
    /// was aborted to save bandwidth (Fig. 7, r08–r09).
    RhaQuenched {
        /// The local vector whose transmission was aborted.
        vector: NodeSet,
    },
    /// The RHA termination alarm fired: agreement reached on `vector`
    /// after `broadcasts` own RHV transmissions (Fig. 7, r14–r18).
    RhaSettled {
        /// The agreed reception-history vector.
        vector: NodeSet,
        /// Own RHV broadcasts this execution (1 + narrowing rounds).
        broadcasts: u32,
    },
    /// The local node issued a JOIN request (Fig. 9, s02).
    JoinRequested,
    /// The local node issued a LEAVE request (Fig. 9, s08).
    LeaveRequested,
    /// A JOIN request of `subject` was observed (Fig. 9, s04–s06).
    JoinObserved {
        /// The joining node.
        subject: NodeId,
    },
    /// A LEAVE request of `subject` was observed (Fig. 9, s10–s12).
    LeaveObserved {
        /// The leaving node.
        subject: NodeId,
    },
    /// A membership cycle boundary was processed (Fig. 9, s17–s27).
    CycleStarted {
        /// Completed-cycle counter after this boundary.
        index: u64,
        /// Whether the cycle was idle (no pending join/leave — RHA
        /// skipped, line s24).
        idle: bool,
    },
    /// A non-integrated node bootstrapped its view from `Vj`
    /// (Fig. 9, s18–s19).
    ViewBootstrapped {
        /// The bootstrap view.
        view: NodeSet,
    },
    /// `msh-view-proc` committed a new view `Vs` (Fig. 9, a00–a02).
    /// Emitted only when the view actually changed.
    ViewInstalled {
        /// The committed view.
        view: NodeSet,
    },
    /// `msh-can.nty`: a membership change was delivered upstairs.
    ViewChanged {
        /// The notified set of active sites.
        view: NodeSet,
        /// The failed nodes reported with the change.
        failed: NodeSet,
    },
    /// The local node was expelled (declared failed while running).
    Expelled,
    /// The local node's leave completed; it is out of the service.
    LeftService,
    /// External marker: the node fail-silently crashed at this instant.
    NodeCrashed,
    /// External marker: the node was power-cycled at this instant.
    NodeRestarted,
    /// A federation gateway accepted a fresher segment-view digest
    /// (its own segment's change, or one relayed by a peer).
    FedDigest {
        /// Segment whose representative reported the digest.
        reporter: u8,
        /// Segment the digest describes.
        subject: u8,
        /// Epoch of the claimed view (monotonic per subject segment).
        epoch: u32,
        /// The claimed segment view.
        view: NodeSet,
    },
    /// A quorum of representatives agreed on a segment's digest: the
    /// gateway installed it into its global view (Rapid-style stable
    /// cut).
    FedInstall {
        /// Segment the installed view describes.
        subject: u8,
        /// Installed epoch.
        epoch: u32,
        /// Installed segment view.
        view: NodeSet,
    },
    /// A federation gateway relayed a frame that arrived over an
    /// inter-segment bridge onto the local bus.
    FedRelay {
        /// The relayed frame's mid (as re-transmitted locally).
        mid: Mid,
        /// Segment the frame came from.
        from_seg: u8,
    },
    /// A standby gateway promoted itself to the active role after the
    /// segment's membership expelled the previous gateway.
    FedElect {
        /// The expelled gateway the successor replaces.
        leader: NodeId,
        /// The epoch the promoted gateway announces under.
        epoch: u32,
    },
    /// A promoted gateway's re-announced segment view reached the
    /// global stable cut: the segment rejoined the federation.
    FedRejoin {
        /// The rejoining segment.
        subject: u8,
        /// The epoch at which the rejoin converged.
        epoch: u32,
    },
}

impl ProtocolEvent {
    /// The stable, dotted event-kind label used in the JSONL trace.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolEvent::TimerArmed { .. } => "timer.armed",
            ProtocolEvent::TimerExpired { .. } => "timer.expired",
            ProtocolEvent::LifeSignSent => "fd.lifesign.tx",
            ProtocolEvent::LifeSignObserved { .. } => "fd.lifesign.rx",
            ProtocolEvent::SuspectRaised { .. } => "fd.suspect",
            ProtocolEvent::FailureNotified { .. } => "fd.notified",
            ProtocolEvent::FdaInvoked { .. } => "fda.invoked",
            ProtocolEvent::FdaSignSent { .. } => "fda.sign.tx",
            ProtocolEvent::FdaSignReceived { .. } => "fda.sign.rx",
            ProtocolEvent::FdaDelivered { .. } => "fda.delivered",
            ProtocolEvent::RhaStarted { .. } => "rha.started",
            ProtocolEvent::RhvSent { .. } => "rha.rhv.tx",
            ProtocolEvent::RhvReceived { .. } => "rha.rhv.rx",
            ProtocolEvent::RhaNarrowed { .. } => "rha.narrowed",
            ProtocolEvent::RhaQuenched { .. } => "rha.quenched",
            ProtocolEvent::RhaSettled { .. } => "rha.settled",
            ProtocolEvent::JoinRequested => "msh.join.tx",
            ProtocolEvent::LeaveRequested => "msh.leave.tx",
            ProtocolEvent::JoinObserved { .. } => "msh.join.rx",
            ProtocolEvent::LeaveObserved { .. } => "msh.leave.rx",
            ProtocolEvent::CycleStarted { .. } => "msh.cycle",
            ProtocolEvent::ViewBootstrapped { .. } => "view.bootstrap",
            ProtocolEvent::ViewInstalled { .. } => "view.installed",
            ProtocolEvent::ViewChanged { .. } => "view.changed",
            ProtocolEvent::Expelled => "msh.expelled",
            ProtocolEvent::LeftService => "msh.left",
            ProtocolEvent::NodeCrashed => "node.crashed",
            ProtocolEvent::NodeRestarted => "node.restarted",
            ProtocolEvent::FedDigest { .. } => "fed.digest",
            ProtocolEvent::FedInstall { .. } => "fed.install",
            ProtocolEvent::FedRelay { .. } => "fed.relay",
            ProtocolEvent::FedElect { .. } => "fed.elect",
            ProtocolEvent::FedRejoin { .. } => "fed.rejoin",
        }
    }

    /// Appends the variant-specific JSON fields (each preceded by a
    /// comma) to a JSON object under construction.
    fn write_json_fields(&self, out: &mut String) {
        match *self {
            ProtocolEvent::TimerArmed { timer, deadline } => {
                let _ = write!(
                    out,
                    ",\"timer\":\"{timer}\",\"deadline\":{}",
                    deadline.as_u64()
                );
            }
            ProtocolEvent::TimerExpired { timer } => {
                let _ = write!(out, ",\"timer\":\"{timer}\"");
            }
            ProtocolEvent::LifeSignObserved { of } => {
                let _ = write!(out, ",\"of\":{}", of.as_u8());
            }
            ProtocolEvent::SuspectRaised { suspect } => {
                let _ = write!(out, ",\"suspect\":{}", suspect.as_u8());
            }
            ProtocolEvent::FailureNotified { failed }
            | ProtocolEvent::FdaInvoked { failed }
            | ProtocolEvent::FdaDelivered { failed } => {
                let _ = write!(out, ",\"failed\":{}", failed.as_u8());
            }
            ProtocolEvent::FdaSignSent { failed, diffusion } => {
                let _ = write!(
                    out,
                    ",\"failed\":{},\"diffusion\":{diffusion}",
                    failed.as_u8()
                );
            }
            ProtocolEvent::FdaSignReceived { failed, duplicate } => {
                let _ = write!(
                    out,
                    ",\"failed\":{},\"duplicate\":{duplicate}",
                    failed.as_u8()
                );
            }
            ProtocolEvent::RhaStarted {
                proposal,
                full_member,
            } => {
                let _ = write!(
                    out,
                    ",\"proposal\":\"{proposal}\",\"full_member\":{full_member}"
                );
            }
            ProtocolEvent::RhvSent { vector }
            | ProtocolEvent::RhaNarrowed { vector }
            | ProtocolEvent::RhaQuenched { vector } => {
                let _ = write!(out, ",\"vector\":\"{vector}\"");
            }
            ProtocolEvent::RhvReceived { from, vector } => {
                let _ = write!(out, ",\"from\":{},\"vector\":\"{vector}\"", from.as_u8());
            }
            ProtocolEvent::RhaSettled { vector, broadcasts } => {
                let _ = write!(
                    out,
                    ",\"vector\":\"{vector}\",\"broadcasts\":{broadcasts}"
                );
            }
            ProtocolEvent::JoinObserved { subject } | ProtocolEvent::LeaveObserved { subject } => {
                let _ = write!(out, ",\"subject\":{}", subject.as_u8());
            }
            ProtocolEvent::CycleStarted { index, idle } => {
                let _ = write!(out, ",\"index\":{index},\"idle\":{idle}");
            }
            ProtocolEvent::ViewBootstrapped { view } | ProtocolEvent::ViewInstalled { view } => {
                let _ = write!(out, ",\"view\":\"{view}\"");
            }
            ProtocolEvent::ViewChanged { view, failed } => {
                let _ = write!(out, ",\"view\":\"{view}\",\"failed\":\"{failed}\"");
            }
            ProtocolEvent::FedDigest {
                reporter,
                subject,
                epoch,
                view,
            } => {
                let _ = write!(
                    out,
                    ",\"reporter\":{reporter},\"subject\":{subject},\"epoch\":{epoch},\"view\":\"{view}\""
                );
            }
            ProtocolEvent::FedInstall {
                subject,
                epoch,
                view,
            } => {
                let _ = write!(
                    out,
                    ",\"subject\":{subject},\"epoch\":{epoch},\"view\":\"{view}\""
                );
            }
            ProtocolEvent::FedRelay { mid, from_seg } => {
                let _ = write!(out, ",\"mid\":\"{mid}\",\"from_seg\":{from_seg}");
            }
            ProtocolEvent::FedElect { leader, epoch } => {
                let _ = write!(out, ",\"leader\":{},\"epoch\":{epoch}", leader.as_u8());
            }
            ProtocolEvent::FedRejoin { subject, epoch } => {
                let _ = write!(out, ",\"subject\":{subject},\"epoch\":{epoch}");
            }
            ProtocolEvent::LifeSignSent
            | ProtocolEvent::JoinRequested
            | ProtocolEvent::LeaveRequested
            | ProtocolEvent::Expelled
            | ProtocolEvent::LeftService
            | ProtocolEvent::NodeCrashed
            | ProtocolEvent::NodeRestarted => {}
        }
    }
}

/// The causal provenance of a protocol event: what triggered it.
///
/// Threaded through the stack so that every emitted event records the
/// bus delivery or prior event (typically a timer expiry) it reacts
/// to, letting `canely-trace` reconstruct end-to-end causal chains
/// (life-sign → surveillance expiry → failure-sign diffusion → RHA →
/// view install).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Cause {
    /// No recorded trigger: power-on bootstrap, a scripted harness
    /// action, or tracing switched off when the trigger happened.
    #[default]
    Boot,
    /// The bus transaction whose frame was delivered at this instant.
    /// Delivery instants identify transactions uniquely because the
    /// bus is globally serialized.
    Bus {
        /// Delivery instant of the triggering transaction.
        deliver_at: BitTime,
    },
    /// A prior protocol event, referenced by its log sequence number
    /// (the `seq` field of the JSONL export).
    Event {
        /// Sequence number of the triggering event.
        seq: u64,
    },
}

impl Cause {
    /// Appends the `cause` JSON field (preceded by a comma) — nothing
    /// for [`Cause::Boot`], which is encoded as field absence.
    fn write_json_field(&self, out: &mut String) {
        match *self {
            Cause::Boot => {}
            Cause::Bus { deliver_at } => {
                let _ = write!(out, ",\"cause\":\"bus:{}\"", deliver_at.as_u64());
            }
            Cause::Event { seq } => {
                let _ = write!(out, ",\"cause\":\"event:{seq}\"");
            }
        }
    }
}

/// A protocol event stamped with its instant and emitting node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// When the event happened (simulation bit-time).
    pub time: BitTime,
    /// The node it happened at (for external markers: the affected
    /// node).
    pub node: NodeId,
    /// What happened.
    pub event: ProtocolEvent,
    /// What triggered it.
    pub cause: Cause,
}

impl TimedEvent {
    /// An event with no recorded trigger ([`Cause::Boot`]).
    pub fn new(time: BitTime, node: NodeId, event: ProtocolEvent) -> Self {
        TimedEvent {
            time,
            node,
            event,
            cause: Cause::Boot,
        }
    }

    /// Renders the event as one JSONL object (no trailing newline).
    pub fn to_json(&self) -> String {
        self.to_json_seq(None)
    }

    /// Renders the event as one JSONL object, including its log
    /// sequence number (the target of `event:<seq>` cause references).
    pub fn to_json_seq(&self, seq: Option<u64>) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(out, "{{\"t\":{}", self.time.as_u64());
        if let Some(seq) = seq {
            let _ = write!(out, ",\"seq\":{seq}");
        }
        let _ = write!(
            out,
            ",\"node\":{},\"kind\":\"{}\"",
            self.node.as_u8(),
            self.event.kind()
        );
        self.event.write_json_fields(&mut out);
        self.cause.write_json_field(&mut out);
        out.push('}');
        out
    }
}

/// The shared state behind [`ObsLog`] / enabled [`EventSink`]s: the
/// event vector plus the causal-threading bookkeeping.
#[derive(Debug, Default)]
struct LogInner {
    events: Vec<TimedEvent>,
    /// Ambient cause stamped onto subsequently emitted events (set by
    /// the stack's dispatch layer at every bus delivery / timer fire).
    cause: Cause,
    /// Last `timer.armed` sequence number per (node, timer), so a
    /// `timer.expired` links back to the arming that scheduled it.
    armed: HashMap<(u8, u8, u8), u64>,
}

/// Key of the timer-arming map: (owning node, timer class, timer arg).
fn timer_key(node: NodeId, timer: ObsTimer) -> (u8, u8, u8) {
    match timer {
        ObsTimer::Surveillance(r) => (node.as_u8(), 0, r.as_u8()),
        ObsTimer::RhaTermination => (node.as_u8(), 1, 0),
        ObsTimer::MembershipCycle => (node.as_u8(), 2, 0),
    }
}

impl LogInner {
    /// Appends one event, resolving its cause: timer expiries link to
    /// their arming, everything else carries the ambient cause.
    /// Returns the event's sequence number.
    fn push(&mut self, time: BitTime, node: NodeId, event: ProtocolEvent) -> u64 {
        let seq = self.events.len() as u64;
        let cause = match event {
            ProtocolEvent::TimerExpired { timer } => self
                .armed
                .get(&timer_key(node, timer))
                .map_or(self.cause, |&armed_seq| Cause::Event { seq: armed_seq }),
            _ => self.cause,
        };
        if let ProtocolEvent::TimerArmed { timer, .. } = event {
            self.armed.insert(timer_key(node, timer), seq);
        }
        self.events.push(TimedEvent {
            time,
            node,
            event,
            cause,
        });
        seq
    }
}

/// A cloneable handle through which protocol entities emit events.
///
/// The default ([`EventSink::disabled`]) handle is empty: emitting
/// through it is a branch on `None` — no allocation, no side effect.
/// Handles produced by [`ObsLog::sink`] append to the shared log.
#[derive(Debug, Clone, Default)]
pub struct EventSink {
    log: Option<Rc<RefCell<LogInner>>>,
}

impl EventSink {
    /// A sink that drops everything (the default for every entity).
    pub const fn disabled() -> Self {
        EventSink { log: None }
    }

    /// Whether events emitted through this handle are recorded.
    pub fn is_enabled(&self) -> bool {
        self.log.is_some()
    }

    /// Records one event. A no-op (and allocation-free) when disabled.
    /// Returns the event's log sequence number when recorded, so the
    /// dispatcher can chain downstream causes onto it.
    #[inline]
    pub fn emit(&self, time: BitTime, node: NodeId, event: ProtocolEvent) -> Option<u64> {
        self.log
            .as_ref()
            .map(|log| log.borrow_mut().push(time, node, event))
    }

    /// Sets the ambient cause stamped onto subsequently emitted
    /// events. A no-op (and allocation-free) when disabled.
    #[inline]
    pub fn set_cause(&self, cause: Cause) {
        if let Some(log) = &self.log {
            log.borrow_mut().cause = cause;
        }
    }

    /// Resets the ambient cause to [`Cause::Boot`]. A no-op (and
    /// allocation-free) when disabled.
    #[inline]
    pub fn clear_cause(&self) {
        self.set_cause(Cause::Boot);
    }
}

/// The shared, append-only event log of one simulation run.
///
/// Create one log per run, hand [`ObsLog::sink`] clones to every
/// stack (via `CanelyStack::with_obs`), and read the merged record
/// back with [`ObsLog::events`] / [`ObsLog::export_jsonl`].
#[derive(Debug, Clone, Default)]
pub struct ObsLog {
    log: Rc<RefCell<LogInner>>,
}

impl ObsLog {
    /// An empty log.
    pub fn new() -> Self {
        ObsLog::default()
    }

    /// A sink handle appending to this log.
    pub fn sink(&self) -> EventSink {
        EventSink {
            log: Some(Rc::clone(&self.log)),
        }
    }

    /// Records an event from outside the stack — used by harnesses to
    /// inject the externally known crash/restart markers
    /// ([`ProtocolEvent::NodeCrashed`] / [`ProtocolEvent::NodeRestarted`])
    /// that anchor the latency metrics. Recorded with [`Cause::Boot`]:
    /// scripted actions have no in-protocol trigger.
    pub fn record(&self, time: BitTime, node: NodeId, event: ProtocolEvent) {
        let mut inner = self.log.borrow_mut();
        let ambient = inner.cause;
        inner.cause = Cause::Boot;
        inner.push(time, node, event);
        inner.cause = ambient;
    }

    /// Rewinds the log to its just-created state — events, ambient
    /// cause and the timer-arming map are emptied — while keeping the
    /// backing storage, so one log allocation serves many runs
    /// (arena reuse). Existing [`EventSink`] handles remain attached.
    pub fn reset(&self) {
        let mut inner = self.log.borrow_mut();
        inner.events.clear();
        inner.cause = Cause::Boot;
        inner.armed.clear();
    }

    /// A snapshot of all recorded events.
    pub fn events(&self) -> Vec<TimedEvent> {
        self.log.borrow().events.clone()
    }

    /// Runs `f` over the recorded events without cloning them.
    pub fn with_events<R>(&self, f: impl FnOnce(&[TimedEvent]) -> R) -> R {
        f(&self.log.borrow().events)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.log.borrow().events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.log.borrow().events.is_empty()
    }

    /// Renders the log — merged with a bus trace, if given — as one
    /// time-ordered JSONL document (see [`export_jsonl`]).
    pub fn export_jsonl(&self, bus: Option<&BusTrace>) -> String {
        export_jsonl(&self.log.borrow().events, bus)
    }

    /// Incrementally folds the events recorded since position `from`
    /// into `fold` and returns the new log length — the cursor for the
    /// next call. Lets a long-running harness keep a [`Snapshot`]
    /// current in O(new events) per refresh instead of re-scanning the
    /// whole log (see [`SnapshotFold`] for the ordering contract).
    pub fn fold_new(&self, fold: &mut SnapshotFold, from: usize) -> usize {
        let inner = self.log.borrow();
        for e in &inner.events[from..] {
            fold.fold(e);
        }
        inner.events.len()
    }
}

/// Renders protocol events and (optionally) the bus transaction trace
/// as one merged JSON-Lines document, one object per line, sorted by
/// time.
///
/// Ordering guarantees (documented in `docs/TRACE_SCHEMA.md`):
/// primary key is the event instant `t`; at equal instants bus
/// transactions sort before protocol events (a frame *starts* before
/// anything reacts to it), and events of the same class keep their
/// recording order. The output is deterministic: two identical runs
/// produce byte-identical documents.
pub fn export_jsonl(events: &[TimedEvent], bus: Option<&BusTrace>) -> String {
    // (time, class, sequence) — class 0 = bus, 1 = protocol.
    let mut lines: Vec<(u64, u8, usize, String)> = Vec::with_capacity(
        events.len() + bus.map_or(0, BusTrace::len),
    );
    if let Some(trace) = bus {
        for (seq, rec) in trace.iter().enumerate() {
            let mut line = String::with_capacity(160);
            let mid = rec
                .mid()
                .map_or_else(|| "-".to_string(), |m| m.to_string());
            let _ = write!(
                line,
                "{{\"t\":{},\"kind\":\"bus.tx\",\"mid\":\"{}\",\"frame\":\"{}\",\
                 \"transmitters\":\"{}\",\"bus_free\":{},\"deliver\":{},\"queued\":{},\
                 \"arb_losses\":{},\"delivered\":{},\"errored\":{}}}",
                rec.start.as_u64(),
                json_escape(&mid),
                if rec.frame.is_remote() { "rtr" } else { "data" },
                rec.transmitters,
                rec.bus_free.as_u64(),
                rec.deliver_at.as_u64(),
                rec.queued_at.as_u64(),
                rec.arb_losses,
                rec.delivered,
                rec.errored,
            );
            lines.push((rec.start.as_u64(), 0, seq, line));
        }
    }
    for (seq, event) in events.iter().enumerate() {
        lines.push((
            event.time.as_u64(),
            1,
            seq,
            event.to_json_seq(Some(seq as u64)),
        ));
    }
    lines.sort_by_key(|&(t, class, seq, _)| (t, class, seq));
    let mut out = String::new();
    for (_, _, _, line) in lines {
        out.push_str(&line);
        out.push('\n');
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A simple sample-keeping histogram over `u64` values (latencies in
/// bit-times, round counts, …).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether the histogram holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        Some(self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64)
    }

    /// Nearest-rank percentile, `p` in `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// The raw samples, in recording order.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Equal-width buckets spanning `[min, max]` — `(lo, hi, count)`
    /// triples for ASCII rendering. Empty for an empty histogram.
    pub fn buckets(&self, n: usize) -> Vec<(u64, u64, usize)> {
        let (Some(min), Some(max)) = (self.min(), self.max()) else {
            return Vec::new();
        };
        let n = n.max(1);
        let width = ((max - min) / n as u64).max(1);
        // A narrow value range needs fewer than `n` buckets; don't pad
        // with empty ranges past the maximum.
        let n = (((max - min) / width) as usize + 1).min(n);
        let mut buckets: Vec<(u64, u64, usize)> = (0..n)
            .map(|i| {
                let lo = min + width * i as u64;
                let hi = if i == n - 1 { max } else { lo + width - 1 };
                (lo, hi, 0)
            })
            .collect();
        for &s in &self.samples {
            let idx = (((s - min) / width) as usize).min(n - 1);
            buckets[idx].2 += 1;
        }
        buckets
    }
}

/// Per-node (and global) event counters derived from the log.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// `timer.armed` events.
    pub timers_armed: u64,
    /// `timer.expired` events.
    pub timers_expired: u64,
    /// Explicit life-signs broadcast (`fd.lifesign.tx`).
    pub life_signs_sent: u64,
    /// Explicit life-signs observed (`fd.lifesign.rx`).
    pub life_signs_observed: u64,
    /// Surveillance expiries raising a suspicion (`fd.suspect`).
    pub suspects_raised: u64,
    /// Agreed failures delivered upstairs (`fd.notified`).
    pub failures_notified: u64,
    /// FDA invocations (`fda.invoked`).
    pub fda_invocations: u64,
    /// Failure-sign transmit requests (`fda.sign.tx`).
    pub fda_signs_sent: u64,
    /// Failure-sign copies received (`fda.sign.rx`).
    pub fda_signs_received: u64,
    /// First-copy FDA deliveries (`fda.delivered`).
    pub fda_deliveries: u64,
    /// RHA executions started (`rha.started`).
    pub rha_started: u64,
    /// RHV signals queued (`rha.rhv.tx`).
    pub rhv_sent: u64,
    /// RHV signals received (`rha.rhv.rx`).
    pub rhv_received: u64,
    /// Narrowing rounds (`rha.narrowed`).
    pub rha_narrowings: u64,
    /// RHA executions settled (`rha.settled`).
    pub rha_settled: u64,
    /// Own JOIN requests (`msh.join.tx`).
    pub joins_requested: u64,
    /// Own LEAVE requests (`msh.leave.tx`).
    pub leaves_requested: u64,
    /// Membership cycle boundaries (`msh.cycle`).
    pub cycles: u64,
    /// View commits, bootstrap included (`view.installed` +
    /// `view.bootstrap`).
    pub views_installed: u64,
    /// Membership-change notifications (`view.changed`).
    pub view_changes: u64,
    /// Expulsions (`msh.expelled`).
    pub expulsions: u64,
    /// Completed leaves (`msh.left`).
    pub leaves_completed: u64,
    /// External crash markers (`node.crashed`).
    pub crashes: u64,
    /// External restart markers (`node.restarted`).
    pub restarts: u64,
}

impl Counters {
    fn bump(&mut self, event: &ProtocolEvent) {
        match event {
            ProtocolEvent::TimerArmed { .. } => self.timers_armed += 1,
            ProtocolEvent::TimerExpired { .. } => self.timers_expired += 1,
            ProtocolEvent::LifeSignSent => self.life_signs_sent += 1,
            ProtocolEvent::LifeSignObserved { .. } => self.life_signs_observed += 1,
            ProtocolEvent::SuspectRaised { .. } => self.suspects_raised += 1,
            ProtocolEvent::FailureNotified { .. } => self.failures_notified += 1,
            ProtocolEvent::FdaInvoked { .. } => self.fda_invocations += 1,
            ProtocolEvent::FdaSignSent { .. } => self.fda_signs_sent += 1,
            ProtocolEvent::FdaSignReceived { .. } => self.fda_signs_received += 1,
            ProtocolEvent::FdaDelivered { .. } => self.fda_deliveries += 1,
            ProtocolEvent::RhaStarted { .. } => self.rha_started += 1,
            ProtocolEvent::RhvSent { .. } => self.rhv_sent += 1,
            ProtocolEvent::RhvReceived { .. } => self.rhv_received += 1,
            ProtocolEvent::RhaNarrowed { .. } => self.rha_narrowings += 1,
            ProtocolEvent::RhaQuenched { .. } => {}
            ProtocolEvent::RhaSettled { .. } => self.rha_settled += 1,
            ProtocolEvent::JoinRequested => self.joins_requested += 1,
            ProtocolEvent::LeaveRequested => self.leaves_requested += 1,
            ProtocolEvent::JoinObserved { .. } | ProtocolEvent::LeaveObserved { .. } => {}
            ProtocolEvent::CycleStarted { .. } => self.cycles += 1,
            ProtocolEvent::ViewBootstrapped { .. } | ProtocolEvent::ViewInstalled { .. } => {
                self.views_installed += 1;
            }
            ProtocolEvent::ViewChanged { .. } => self.view_changes += 1,
            ProtocolEvent::Expelled => self.expulsions += 1,
            ProtocolEvent::LeftService => self.leaves_completed += 1,
            ProtocolEvent::NodeCrashed => self.crashes += 1,
            ProtocolEvent::NodeRestarted => self.restarts += 1,
            // Federation events have their own aggregation in the
            // federation layer; the per-segment counters ignore them.
            ProtocolEvent::FedDigest { .. }
            | ProtocolEvent::FedInstall { .. }
            | ProtocolEvent::FedRelay { .. }
            | ProtocolEvent::FedElect { .. }
            | ProtocolEvent::FedRejoin { .. } => {}
        }
    }
}

/// Aggregate bus figures carried by a [`Snapshot`].
#[derive(Debug, Clone, Copy)]
pub struct BusMetrics {
    /// Transactions on the wire over the measured window.
    pub transactions: usize,
    /// Errored transactions.
    pub errors: usize,
    /// Overall bus utilization in `[0, 1]`.
    pub utilization: f64,
    /// Utilization attributable to the membership suite
    /// (ELS + FDA + RHA + JOIN + LEAVE — the Fig. 10 quantity).
    pub suite_utilization: f64,
}

/// Metrics derived from one event log (plus, optionally, the bus
/// trace): counters and the latency histograms of the evaluation.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counters summed over all nodes.
    pub totals: Counters,
    per_node: Vec<(NodeId, Counters)>,
    /// Failure-detection latency: per observer, `fd.notified` instant
    /// minus the victim's `node.crashed` marker (bit-times).
    pub detection_latency: Histogram,
    /// View-change latency: per observer, the first view commit
    /// *excluding* the victim minus the crash marker (bit-times).
    pub view_change_latency: Histogram,
    /// Own RHV broadcasts per settled agreement (1 = no narrowing).
    pub rha_broadcasts: Histogram,
    /// Bus utilization figures, when a trace was supplied.
    pub bus: Option<BusMetrics>,
}

impl Snapshot {
    /// Folds an event log (and optionally the bus trace with the
    /// measurement horizon) into a metrics snapshot.
    ///
    /// The latency histograms need `node.crashed` markers in the log
    /// (recorded by the harness via [`ObsLog::record`]); without
    /// markers they stay empty.
    ///
    /// This is the one-shot convenience over [`SnapshotFold`]: it
    /// pre-loads the crash markers (so marker position in the log
    /// never matters), folds every event, and finishes.
    pub fn compute(events: &[TimedEvent], bus: Option<(&BusTrace, BitTime)>) -> Self {
        let mut fold = SnapshotFold::new();
        fold.preload_markers(events);
        for e in events {
            fold.fold(e);
        }
        fold.finish(bus)
    }

    /// Counters per node, in node order (only nodes that emitted or
    /// were the subject of at least one event).
    pub fn per_node(&self) -> &[(NodeId, Counters)] {
        &self.per_node
    }
}

/// One open view-change measurement window: a crash of `victim` at
/// `at`, collecting each observer's first subsequent view commit that
/// excludes the victim.
#[derive(Debug, Clone)]
struct ViewWindow {
    victim: NodeId,
    at: BitTime,
    settled: Vec<Option<BitTime>>,
}

/// Incremental [`Snapshot`] builder: feed events as they are recorded
/// (via [`SnapshotFold::fold`] or [`ObsLog::fold_new`]) and call
/// [`SnapshotFold::finish`] at the end. Folding is O(1) per event
/// (O(open crash windows) for view commits), so a long-running
/// harness can keep metrics current without re-scanning the log —
/// this is what `canelyctl metrics` and its `--live` exposition use.
///
/// # Ordering contract
///
/// Latency windows are anchored at `node.crashed` markers. A marker
/// is registered when it is folded; events folded *before* it are
/// never re-examined. The fold therefore matches
/// [`Snapshot::compute`] exactly when either
///
/// * the markers were pre-registered with
///   [`SnapshotFold::preload_markers`] (what `compute` itself does), or
/// * markers appear in the stream no later than any event they anchor
///   — true for the scenario harnesses, which record the scripted
///   crash/restart markers into the log before the run starts.
#[derive(Debug, Clone, Default)]
pub struct SnapshotFold {
    totals: Counters,
    per_node: Vec<Counters>,
    seen: Vec<bool>,
    crash_times: HashMap<u8, Vec<BitTime>>,
    windows: Vec<ViewWindow>,
    detection_latency: Histogram,
    rha_broadcasts: Histogram,
    preloaded: bool,
}

impl SnapshotFold {
    /// An empty fold.
    pub fn new() -> Self {
        SnapshotFold {
            per_node: vec![Counters::default(); MAX_NODES],
            seen: vec![false; MAX_NODES],
            ..SnapshotFold::default()
        }
    }

    /// Pre-registers every `node.crashed` marker in `events` so that
    /// subsequent folding is position-independent. After this call the
    /// fold ignores markers encountered inline (they still bump the
    /// crash counters).
    pub fn preload_markers(&mut self, events: &[TimedEvent]) {
        for e in events {
            if matches!(e.event, ProtocolEvent::NodeCrashed) {
                self.register_crash(e.node, e.time);
            }
        }
        self.preloaded = true;
    }

    fn register_crash(&mut self, victim: NodeId, at: BitTime) {
        self.crash_times.entry(victim.as_u8()).or_default().push(at);
        self.windows.push(ViewWindow {
            victim,
            at,
            settled: vec![None; MAX_NODES],
        });
    }

    /// Folds one event.
    pub fn fold(&mut self, e: &TimedEvent) {
        let idx = e.node.as_usize();
        self.per_node[idx].bump(&e.event);
        self.seen[idx] = true;
        self.totals.bump(&e.event);

        match e.event {
            ProtocolEvent::NodeCrashed if !self.preloaded => {
                self.register_crash(e.node, e.time);
            }
            ProtocolEvent::FailureNotified { failed } => {
                if let Some(ct) = last_crash_before(&self.crash_times, failed, e.time) {
                    self.detection_latency.record((e.time - ct).as_u64());
                }
            }
            ProtocolEvent::RhaSettled { broadcasts, .. } => {
                self.rha_broadcasts.record(u64::from(broadcasts));
            }
            ProtocolEvent::ViewInstalled { view } | ProtocolEvent::ViewBootstrapped { view } => {
                for w in &mut self.windows {
                    if e.time < w.at || e.node == w.victim || view.contains(w.victim) {
                        continue;
                    }
                    let slot = &mut w.settled[idx];
                    if slot.is_none() {
                        *slot = Some(e.time);
                    }
                }
            }
            _ => {}
        }
    }

    /// The running totals, usable for live gauges before the fold is
    /// finished.
    pub fn totals(&self) -> &Counters {
        &self.totals
    }

    /// Detection-latency samples collected so far.
    pub fn detection_samples(&self) -> usize {
        self.detection_latency.count()
    }

    /// Completes the fold into a [`Snapshot`], attaching bus figures
    /// when a trace and measurement horizon are supplied.
    pub fn finish(self, bus: Option<(&BusTrace, BitTime)>) -> Snapshot {
        let mut snapshot = Snapshot {
            totals: self.totals,
            detection_latency: self.detection_latency,
            rha_broadcasts: self.rha_broadcasts,
            ..Snapshot::default()
        };
        for w in &self.windows {
            for t in w.settled.iter().flatten() {
                snapshot.view_change_latency.record((*t - w.at).as_u64());
            }
        }
        snapshot.per_node = (0..MAX_NODES)
            .filter(|&i| self.seen[i])
            .map(|i| (NodeId::new(i as u8), self.per_node[i]))
            .collect();
        if let Some((trace, until)) = bus {
            if !until.is_zero() {
                let stats = trace.stats(BitTime::ZERO, until);
                snapshot.bus = Some(BusMetrics {
                    transactions: stats.transactions,
                    errors: stats.errors,
                    utilization: stats.utilization(),
                    suite_utilization: stats.utilization_of(&BusStats::MEMBERSHIP_SUITE),
                });
            }
        }
        snapshot
    }
}

fn last_crash_before(
    crash_times: &HashMap<u8, Vec<BitTime>>,
    victim: NodeId,
    at: BitTime,
) -> Option<BitTime> {
    crash_times
        .get(&victim.as_u8())?
        .iter()
        .copied()
        .filter(|&t| t <= at)
        .max()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u8) -> NodeId {
        NodeId::new(id)
    }

    fn t(v: u64) -> BitTime {
        BitTime::new(v)
    }

    #[test]
    fn disabled_sink_drops_events() {
        let sink = EventSink::disabled();
        assert!(!sink.is_enabled());
        sink.emit(t(1), n(0), ProtocolEvent::LifeSignSent);
        // Nothing observable — the call must simply be a no-op.
    }

    #[test]
    fn sink_appends_to_shared_log() {
        let log = ObsLog::new();
        let a = log.sink();
        let b = log.sink();
        assert!(a.is_enabled());
        a.emit(t(5), n(0), ProtocolEvent::LifeSignSent);
        b.emit(t(9), n(1), ProtocolEvent::SuspectRaised { suspect: n(0) });
        let events = log.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].node, n(0));
        assert_eq!(events[1].event, ProtocolEvent::SuspectRaised { suspect: n(0) });
    }

    #[test]
    fn json_lines_are_flat_objects() {
        let e = TimedEvent::new(
            t(1234),
            n(3),
            ProtocolEvent::FdaSignReceived {
                failed: n(7),
                duplicate: true,
            },
        );
        assert_eq!(
            e.to_json(),
            "{\"t\":1234,\"node\":3,\"kind\":\"fda.sign.rx\",\"failed\":7,\"duplicate\":true}"
        );
    }

    #[test]
    fn causes_render_as_compact_references() {
        let mut e = TimedEvent::new(t(10), n(1), ProtocolEvent::LifeSignSent);
        assert!(!e.to_json().contains("cause"), "boot cause is absent");
        e.cause = Cause::Bus {
            deliver_at: t(305),
        };
        assert!(e.to_json().ends_with("\"cause\":\"bus:305\"}"), "{}", e.to_json());
        e.cause = Cause::Event { seq: 42 };
        assert_eq!(
            e.to_json_seq(Some(7)),
            "{\"t\":10,\"seq\":7,\"node\":1,\"kind\":\"fd.lifesign.tx\",\"cause\":\"event:42\"}"
        );
    }

    #[test]
    fn ambient_cause_is_stamped_and_timer_expiry_links_to_arming() {
        let log = ObsLog::new();
        let sink = log.sink();
        let timer = ObsTimer::Surveillance(n(2));
        sink.set_cause(Cause::Bus { deliver_at: t(100) });
        let armed_seq = sink
            .emit(
                t(100),
                n(0),
                ProtocolEvent::TimerArmed {
                    timer,
                    deadline: t(5_100),
                },
            )
            .unwrap();
        sink.clear_cause();
        sink.emit(t(5_100), n(0), ProtocolEvent::TimerExpired { timer });
        sink.set_cause(Cause::Event { seq: 1 });
        sink.emit(t(5_100), n(0), ProtocolEvent::SuspectRaised { suspect: n(2) });
        let events = log.events();
        assert_eq!(events[0].cause, Cause::Bus { deliver_at: t(100) });
        assert_eq!(events[1].cause, Cause::Event { seq: armed_seq });
        assert_eq!(events[2].cause, Cause::Event { seq: 1 });
    }

    #[test]
    fn harness_markers_are_boot_caused() {
        let log = ObsLog::new();
        let sink = log.sink();
        sink.set_cause(Cause::Bus { deliver_at: t(9) });
        log.record(t(50), n(3), ProtocolEvent::NodeCrashed);
        sink.emit(t(60), n(0), ProtocolEvent::LifeSignSent);
        let events = log.events();
        assert_eq!(events[0].cause, Cause::Boot, "scripted marker");
        assert_eq!(
            events[1].cause,
            Cause::Bus { deliver_at: t(9) },
            "ambient cause survives the marker"
        );
    }

    #[test]
    fn every_variant_renders_with_its_kind() {
        let variants = [
            ProtocolEvent::TimerArmed {
                timer: ObsTimer::Surveillance(n(3)),
                deadline: t(10),
            },
            ProtocolEvent::TimerExpired {
                timer: ObsTimer::MembershipCycle,
            },
            ProtocolEvent::LifeSignSent,
            ProtocolEvent::LifeSignObserved { of: n(1) },
            ProtocolEvent::SuspectRaised { suspect: n(1) },
            ProtocolEvent::FailureNotified { failed: n(1) },
            ProtocolEvent::FdaInvoked { failed: n(1) },
            ProtocolEvent::FdaSignSent {
                failed: n(1),
                diffusion: false,
            },
            ProtocolEvent::FdaSignReceived {
                failed: n(1),
                duplicate: false,
            },
            ProtocolEvent::FdaDelivered { failed: n(1) },
            ProtocolEvent::RhaStarted {
                proposal: NodeSet::from_bits(0b11),
                full_member: true,
            },
            ProtocolEvent::RhvSent {
                vector: NodeSet::from_bits(0b11),
            },
            ProtocolEvent::RhvReceived {
                from: n(2),
                vector: NodeSet::from_bits(0b11),
            },
            ProtocolEvent::RhaNarrowed {
                vector: NodeSet::from_bits(0b01),
            },
            ProtocolEvent::RhaQuenched {
                vector: NodeSet::from_bits(0b01),
            },
            ProtocolEvent::RhaSettled {
                vector: NodeSet::from_bits(0b01),
                broadcasts: 2,
            },
            ProtocolEvent::JoinRequested,
            ProtocolEvent::LeaveRequested,
            ProtocolEvent::JoinObserved { subject: n(9) },
            ProtocolEvent::LeaveObserved { subject: n(9) },
            ProtocolEvent::CycleStarted {
                index: 4,
                idle: true,
            },
            ProtocolEvent::ViewBootstrapped {
                view: NodeSet::from_bits(0b11),
            },
            ProtocolEvent::ViewInstalled {
                view: NodeSet::from_bits(0b11),
            },
            ProtocolEvent::ViewChanged {
                view: NodeSet::from_bits(0b11),
                failed: NodeSet::EMPTY,
            },
            ProtocolEvent::Expelled,
            ProtocolEvent::LeftService,
            ProtocolEvent::NodeCrashed,
            ProtocolEvent::NodeRestarted,
        ];
        for event in variants {
            let line = TimedEvent::new(t(1), n(0), event).to_json();
            assert!(
                line.contains(&format!("\"kind\":\"{}\"", event.kind())),
                "{line}"
            );
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn export_merges_and_sorts_by_time() {
        let events = vec![
            TimedEvent::new(t(300), n(1), ProtocolEvent::LifeSignSent),
            TimedEvent::new(t(100), n(0), ProtocolEvent::NodeCrashed),
        ];
        let out = export_jsonl(&events, None);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("node.crashed"), "{out}");
        assert!(lines[1].contains("fd.lifesign.tx"), "{out}");
        // Sequence numbers follow recording order, not sort order.
        assert!(lines[0].contains("\"seq\":1"), "{out}");
        assert!(lines[1].contains("\"seq\":0"), "{out}");
    }

    #[test]
    fn histogram_statistics() {
        let mut h = Histogram::new();
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(10));
        assert_eq!(h.max(), Some(40));
        assert_eq!(h.mean(), Some(25.0));
        assert_eq!(h.percentile(50.0), Some(20));
        assert_eq!(h.percentile(100.0), Some(40));
        let buckets = h.buckets(2);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets.iter().map(|b| b.2).sum::<usize>(), 4);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(99.0), None);
        assert!(h.buckets(4).is_empty());
    }

    #[test]
    fn snapshot_derives_detection_latency_from_markers() {
        let events = vec![
            TimedEvent::new(t(1_000), n(2), ProtocolEvent::NodeCrashed),
            TimedEvent::new(t(8_500), n(0), ProtocolEvent::FailureNotified { failed: n(2) }),
            TimedEvent::new(t(8_500), n(1), ProtocolEvent::FailureNotified { failed: n(2) }),
            TimedEvent::new(
                t(31_000),
                n(0),
                ProtocolEvent::ViewInstalled {
                    view: NodeSet::from_bits(0b011),
                },
            ),
        ];
        let s = Snapshot::compute(&events, None);
        assert_eq!(s.detection_latency.count(), 2);
        assert_eq!(s.detection_latency.min(), Some(7_500));
        assert_eq!(s.view_change_latency.count(), 1);
        assert_eq!(s.view_change_latency.min(), Some(30_000));
        assert_eq!(s.totals.failures_notified, 2);
        assert_eq!(s.totals.crashes, 1);
        // Per-node split: nodes 0, 1, 2 appear.
        assert_eq!(s.per_node().len(), 3);
    }

    #[test]
    fn snapshot_without_markers_has_empty_latency() {
        let events = vec![TimedEvent::new(
            t(8_500),
            n(0),
            ProtocolEvent::FailureNotified { failed: n(2) },
        )];
        let s = Snapshot::compute(&events, None);
        assert!(s.detection_latency.is_empty());
        assert_eq!(s.totals.failures_notified, 1);
    }

    #[test]
    fn json_escape_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    /// A marker-rich stream exercising every fold path: two victims,
    /// a restart in between, interleaved installs (some still
    /// containing the victim, some from the victim itself), RHA
    /// settlements and failure notifications.
    fn fold_fixture() -> Vec<TimedEvent> {
        vec![
            TimedEvent::new(t(1_000), n(2), ProtocolEvent::NodeCrashed),
            TimedEvent::new(t(2_000), n(3), ProtocolEvent::NodeCrashed),
            TimedEvent::new(t(8_500), n(0), ProtocolEvent::FailureNotified { failed: n(2) }),
            TimedEvent::new(t(9_000), n(1), ProtocolEvent::FailureNotified { failed: n(3) }),
            TimedEvent::new(
                t(10_000),
                n(2),
                ProtocolEvent::ViewInstalled {
                    // From the victim itself: must not settle a window.
                    view: NodeSet::from_bits(0b0011),
                },
            ),
            TimedEvent::new(
                t(12_000),
                n(0),
                ProtocolEvent::ViewInstalled {
                    // Still contains victim 3: settles only window (2,..).
                    view: NodeSet::from_bits(0b1011),
                },
            ),
            TimedEvent::new(
                t(15_000),
                n(0),
                ProtocolEvent::ViewInstalled {
                    view: NodeSet::from_bits(0b0011),
                },
            ),
            TimedEvent::new(
                t(15_000),
                n(1),
                ProtocolEvent::ViewBootstrapped {
                    view: NodeSet::from_bits(0b0011),
                },
            ),
            TimedEvent::new(
                t(16_000),
                n(1),
                ProtocolEvent::RhaSettled {
                    vector: NodeSet::from_bits(0b0011),
                    broadcasts: 3,
                },
            ),
            TimedEvent::new(t(20_000), n(2), ProtocolEvent::NodeRestarted),
            TimedEvent::new(t(21_000), n(2), ProtocolEvent::NodeCrashed),
            TimedEvent::new(t(25_000), n(0), ProtocolEvent::FailureNotified { failed: n(2) }),
            TimedEvent::new(
                t(30_000),
                n(1),
                ProtocolEvent::ViewInstalled {
                    view: NodeSet::from_bits(0b0011),
                },
            ),
        ]
    }

    fn sorted_samples(h: &Histogram) -> Vec<u64> {
        let mut s = h.samples().to_vec();
        s.sort_unstable();
        s
    }

    fn assert_snapshots_equal(a: &Snapshot, b: &Snapshot) {
        assert_eq!(a.totals, b.totals);
        assert_eq!(a.per_node(), b.per_node());
        assert_eq!(
            sorted_samples(&a.detection_latency),
            sorted_samples(&b.detection_latency)
        );
        assert_eq!(
            sorted_samples(&a.view_change_latency),
            sorted_samples(&b.view_change_latency)
        );
        assert_eq!(
            sorted_samples(&a.rha_broadcasts),
            sorted_samples(&b.rha_broadcasts)
        );
    }

    #[test]
    fn incremental_fold_matches_one_shot_compute() {
        let events = fold_fixture();
        let reference = Snapshot::compute(&events, None);
        // Markers lead the stream (the harness recording order), so
        // inline registration must match the preloaded one-shot —
        // folded one event at a time, as a live consumer would.
        for chunk in [1, 3, events.len()] {
            let mut fold = SnapshotFold::new();
            for window in events.chunks(chunk) {
                for e in window {
                    fold.fold(e);
                }
            }
            assert_snapshots_equal(&fold.finish(None), &reference);
        }
    }

    #[test]
    fn fold_new_drains_a_log_incrementally() {
        let log = ObsLog::new();
        let events = fold_fixture();
        let mut fold = SnapshotFold::new();
        let mut cursor = 0;
        for e in &events {
            log.record(e.time, e.node, e.event);
            cursor = log.fold_new(&mut fold, cursor);
        }
        assert_eq!(cursor, events.len());
        let reference = Snapshot::compute(&events, None);
        assert_snapshots_equal(&fold.finish(None), &reference);
    }

    #[test]
    fn fold_running_totals_track_the_stream() {
        let events = fold_fixture();
        let mut fold = SnapshotFold::new();
        for e in &events {
            fold.fold(e);
        }
        assert_eq!(fold.totals().crashes, 3);
        assert_eq!(fold.totals().failures_notified, 3);
        assert_eq!(fold.detection_samples(), 3);
    }
}
