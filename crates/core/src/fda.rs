//! Failure Detection Agreement — the FDA micro-protocol (paper Fig. 6).
//!
//! FDA secures the *reliable broadcast of a failure-sign message*: once
//! any correct node signals the crash of node `r`, every correct node
//! eventually delivers exactly one `fda-can.nty(r)`, even if the
//! original transmission suffers inconsistent omissions or the
//! signalling node itself crashes.
//!
//! It is "a simplified and optimized version of the Eager Diffusion
//! (EDCAN) protocol": every recipient of the *first* copy of a
//! failure-sign delivers it upstairs and — absent an own equivalent
//! request — immediately requests its retransmission. Because
//! failure-signs are remote frames whose identifier depends only on
//! the failed node, all those retransmission requests **cluster into a
//! single physical frame** on the wired-AND bus, so agreement
//! typically costs just one extra frame.
//!
//! State is two counters per message identifier, exactly as in the
//! pseudo-code:
//!
//! * `fs_ndup(mid)` — failure-sign duplicates seen;
//! * `fs_nreq(mid)` — own transmit requests issued.

use crate::obs::{EventSink, ProtocolEvent};
use can_controller::Ctx;
use can_types::{Mid, MsgType, NodeId};
use std::collections::HashMap;

#[derive(Debug, Clone, Copy, Default)]
struct FdaState {
    /// `fs_ndup(mid)`: number of failure-sign duplicates received.
    ndup: u32,
    /// `fs_nreq(mid)`: number of own transmit requests issued.
    nreq: u32,
}

/// The FDA micro-protocol entity of one node.
///
/// Drive it with [`Fda::invoke`] (the `fda-can.req` primitive) and
/// [`Fda::on_rtr_ind`] (arrivals of FDA remote frames); the latter
/// returns the `fda-can.nty` deliveries due to the layer above.
#[derive(Debug)]
pub struct Fda {
    state: HashMap<NodeId, FdaState>,
    obs: EventSink,
    eager_diffusion: bool,
}

impl Default for Fda {
    fn default() -> Self {
        Fda::new()
    }
}

impl Fda {
    /// A fresh FDA entity.
    pub fn new() -> Self {
        Fda {
            state: HashMap::new(),
            obs: EventSink::disabled(),
            eager_diffusion: true,
        }
    }

    /// Disables the eager diffusion step (Fig. 5, r04–r07): the entity
    /// still delivers and deduplicates failure signs but never joins
    /// the rebroadcast. This is the FDA half of the `weakened_fda`
    /// mutation knob — without diffusion the protocol loses its
    /// inconsistent-omission masking redundancy. Fault-injection use
    /// only.
    pub fn set_eager_diffusion(&mut self, eager: bool) {
        self.eager_diffusion = eager;
    }

    /// Installs the structured-event sink (see [`crate::obs`]).
    pub fn set_sink(&mut self, sink: EventSink) {
        self.obs = sink;
    }

    /// The mid of a failure-sign for failed node `r`. It does *not*
    /// depend on the transmitter — that is what makes the signs
    /// cluster.
    pub fn failure_sign_mid(r: NodeId) -> Mid {
        Mid::new(MsgType::Fda, 0, r)
    }

    /// `fda-can.req(r)`: invoked (typically by the failure detection
    /// protocol) to reliably disseminate the failure of node `r`
    /// (Fig. 6, lines s00–s05).
    pub fn invoke(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        self.obs
            .emit(ctx.now(), ctx.me(), ProtocolEvent::FdaInvoked { failed: r });
        let st = self.state.entry(r).or_default();
        st.nreq += 1;
        if st.nreq == 1 {
            ctx.can_rtr_req(Self::failure_sign_mid(r)); // s03
            self.obs.emit(
                ctx.now(),
                ctx.me(),
                ProtocolEvent::FdaSignSent {
                    failed: r,
                    diffusion: false,
                },
            );
            ctx.journal(format_args!("FDA: failure-sign transmit request for {r}"));
        }
    }

    /// Handles an arriving FDA remote frame (Fig. 6, lines r00–r09;
    /// own transmissions included). Returns `Some(r)` when the *first*
    /// copy arrives and `fda-can.nty(r)` must be delivered upstairs.
    pub fn on_rtr_ind(&mut self, ctx: &mut Ctx<'_>, mid: Mid) -> Option<NodeId> {
        debug_assert_eq!(mid.msg_type(), MsgType::Fda);
        let r = mid.node();
        let st = self.state.entry(r).or_default();
        st.ndup += 1; // r01
        if st.ndup != 1 {
            self.obs.emit(
                ctx.now(),
                ctx.me(),
                ProtocolEvent::FdaSignReceived {
                    failed: r,
                    duplicate: true,
                },
            );
            return None; // duplicate: already handled
        }
        // First copy: deliver upstairs (r03) and, in the absence of an
        // equivalent transmit request, join the diffusion (r04–r07).
        st.nreq += 1;
        let diffuse = st.nreq == 1 && self.eager_diffusion;
        self.obs.emit(
            ctx.now(),
            ctx.me(),
            ProtocolEvent::FdaSignReceived {
                failed: r,
                duplicate: false,
            },
        );
        if diffuse {
            ctx.can_rtr_req(Self::failure_sign_mid(r)); // r06
            self.obs.emit(
                ctx.now(),
                ctx.me(),
                ProtocolEvent::FdaSignSent {
                    failed: r,
                    diffusion: true,
                },
            );
            ctx.journal(format_args!("FDA: diffusing failure-sign for {r}"));
        }
        self.obs
            .emit(ctx.now(), ctx.me(), ProtocolEvent::FdaDelivered { failed: r });
        Some(r)
    }

    /// Clears the protocol state for node `r`. Called when `r`
    /// rejoins the membership: a later failure of the same node is a
    /// new protocol execution.
    pub fn reset(&mut self, r: NodeId) {
        self.state.remove(&r);
    }

    /// Number of duplicates seen for the failure-sign of `r`
    /// (introspection for tests/benches).
    pub fn duplicates(&self, r: NodeId) -> u32 {
        self.state.get(&r).map_or(0, |s| s.ndup)
    }

    /// Whether this node has issued a transmit request for the
    /// failure-sign of `r`.
    pub fn has_requested(&self, r: NodeId) -> bool {
        self.state.get(&r).is_some_and(|s| s.nreq > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_controller::{Controller, TimerWheel};
    use can_types::BitTime;

    fn with_ctx<R>(controller: &mut Controller, f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
        let mut timers = TimerWheel::new();
        let mut journal = Vec::new();
        let mut ctx = Ctx::new(
            BitTime::ZERO,
            NodeId::new(0),
            controller,
            &mut timers,
            &mut journal,
            false,
        );
        f(&mut ctx)
    }

    #[test]
    fn invoke_issues_exactly_one_request() {
        let mut fda = Fda::new();
        let mut ctl = Controller::new();
        with_ctx(&mut ctl, |ctx| {
            fda.invoke(ctx, NodeId::new(3));
            fda.invoke(ctx, NodeId::new(3)); // s02 guard
        });
        assert_eq!(ctl.queue_len(), 1);
        assert!(fda.has_requested(NodeId::new(3)));
    }

    #[test]
    fn first_copy_delivers_and_diffuses() {
        let mut fda = Fda::new();
        let mut ctl = Controller::new();
        let mid = Fda::failure_sign_mid(NodeId::new(7));
        let delivered = with_ctx(&mut ctl, |ctx| fda.on_rtr_ind(ctx, mid));
        assert_eq!(delivered, Some(NodeId::new(7)));
        // The recipient joined the diffusion.
        assert_eq!(ctl.queue_len(), 1);
    }

    #[test]
    fn duplicates_are_suppressed() {
        let mut fda = Fda::new();
        let mut ctl = Controller::new();
        let mid = Fda::failure_sign_mid(NodeId::new(7));
        with_ctx(&mut ctl, |ctx| {
            assert!(fda.on_rtr_ind(ctx, mid).is_some());
            assert!(fda.on_rtr_ind(ctx, mid).is_none());
            assert!(fda.on_rtr_ind(ctx, mid).is_none());
        });
        assert_eq!(fda.duplicates(NodeId::new(7)), 3);
        // Only the first copy triggered a diffusion request.
        assert_eq!(ctl.queue_len(), 1);
    }

    #[test]
    fn own_prior_request_prevents_rediffusion() {
        // A node that already invoked FDA for r does not request again
        // upon receiving the (possibly own) failure-sign (r05 guard).
        let mut fda = Fda::new();
        let mut ctl = Controller::new();
        let r = NodeId::new(9);
        with_ctx(&mut ctl, |ctx| {
            fda.invoke(ctx, r);
            let delivered = fda.on_rtr_ind(ctx, Fda::failure_sign_mid(r));
            // First copy still delivers upstairs…
            assert_eq!(delivered, Some(r));
        });
        // …but no second transmit request was issued.
        assert_eq!(ctl.queue_len(), 1);
    }

    #[test]
    fn independent_state_per_failed_node() {
        let mut fda = Fda::new();
        let mut ctl = Controller::new();
        with_ctx(&mut ctl, |ctx| {
            assert!(fda
                .on_rtr_ind(ctx, Fda::failure_sign_mid(NodeId::new(1)))
                .is_some());
            assert!(fda
                .on_rtr_ind(ctx, Fda::failure_sign_mid(NodeId::new(2)))
                .is_some());
        });
        assert_eq!(ctl.queue_len(), 2);
    }

    #[test]
    fn reset_allows_a_new_execution() {
        let mut fda = Fda::new();
        let mut ctl = Controller::new();
        let r = NodeId::new(4);
        with_ctx(&mut ctl, |ctx| {
            assert!(fda.on_rtr_ind(ctx, Fda::failure_sign_mid(r)).is_some());
            fda.reset(r);
            assert!(fda.on_rtr_ind(ctx, Fda::failure_sign_mid(r)).is_some());
        });
    }

    #[test]
    fn failure_sign_mid_is_transmitter_independent() {
        assert_eq!(
            Fda::failure_sign_mid(NodeId::new(5)).to_can_id(),
            Fda::failure_sign_mid(NodeId::new(5)).to_can_id()
        );
    }
}
