//! Protocol parameters (the paper's timing and degree bounds).

use crate::fd::DetectorKind;
use can_types::{BitRate, BitTime};

/// Configuration of a CANELy node stack.
///
/// Field names follow the paper's parameter glossary:
///
/// | Field | Paper | Meaning |
/// |---|---|---|
/// | `heartbeat_period` | `Th` | max interval between consecutive life-sign transmit requests |
/// | `tx_delay_bound` | `Ttd = Tltm + Tina` | bounded frame transmission delay (MCAN4) |
/// | `membership_cycle` | `Tm` | membership cycle period |
/// | `rha_timeout` | `Trha` | RHA maximum termination time |
/// | `join_wait` | `Tjoin-wait` | maximum join wait delay (footnote: much longer than `Tm`) |
/// | `inconsistent_degree` | `j` | bounded inconsistent omission degree (LCAN4) |
///
/// The remaining flags select design variants used by the ablation
/// benches (the paper's design corresponds to the defaults).
///
/// # Examples
///
/// ```
/// use canely::CanelyConfig;
/// use can_types::BitTime;
///
/// let cfg = CanelyConfig::default().with_membership_cycle(BitTime::new(50_000));
/// assert_eq!(cfg.membership_cycle, BitTime::new(50_000));
/// // Detection latency bound: Th + Ttd.
/// assert_eq!(cfg.detection_latency_bound(), cfg.heartbeat_period + cfg.tx_delay_bound);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanelyConfig {
    /// `Th`: the heartbeat (life-sign) period.
    pub heartbeat_period: BitTime,
    /// `Ttd`: network message transmission delay bound added to remote
    /// surveillance timers (`Tltm + Tina`).
    pub tx_delay_bound: BitTime,
    /// `Tm`: the membership cycle period.
    pub membership_cycle: BitTime,
    /// `Trha`: RHA maximum termination time.
    pub rha_timeout: BitTime,
    /// `Tjoin-wait`: maximum join wait delay at a non-integrated node.
    pub join_wait: BitTime,
    /// `j`: the inconsistent omission degree bound used by RHA's
    /// duplicate-suppression rule (Fig. 7, line r08).
    pub inconsistent_degree: u32,
    /// Whether normal data traffic signals node activity implicitly
    /// (the `can-data.nty` mechanism of Sec. 6.3). Disabling it forces
    /// explicit life-signs from every node — an ablation target.
    pub implicit_heartbeats: bool,
    /// Ablation: also treat JOIN/LEAVE remote frames as activity of
    /// their issuing node (the paper counts only data frames and ELS).
    pub activity_from_all_rtr: bool,
    /// Reconstruction choice: a joining node excluded from the agreed
    /// view (inconsistent join failure) re-issues its JOIN request on
    /// the next cycle instead of staying out forever.
    pub rejoin_on_failed_join: bool,
    /// Lifecycle of an expelled node (declared failed while running —
    /// e.g. its fresh incarnation rebooted before the old failure
    /// settled): start a new incarnation and rejoin after this delay,
    /// honouring the Sec. 6.4 assumption that reintegration happens "a
    /// period much higher than Tm" after removal. `None` keeps
    /// expulsion terminal.
    pub expulsion_rejoin_delay: Option<BitTime>,
    /// The failure-detector backend (see `docs/DETECTORS.md`). The
    /// default is the paper's surveillance-timer protocol; the
    /// alternatives trade detection latency against bus bandwidth and
    /// false-suspicion robustness.
    pub detector: DetectorKind,
    /// **Fault-injection mutant — never enable in a correct stack.**
    /// Weakens the failure-detection path in two paper-violating ways:
    /// remote surveillance margins drop the inaccessibility term
    /// `Tina` from `Ttd` (an MCAN4 violation — margins then cover only
    /// `Tltm`-scale queuing, so any inaccessibility period of
    /// millisecond order produces a *false suspicion* of a live node),
    /// and FDA stops eagerly rebroadcasting failure signs on first
    /// reception (Fig. 5, line r04). The campaign oracle uses this
    /// mutant to prove it can catch and shrink real protocol bugs.
    /// Defaults to `false`; the `weakened-fda` cargo feature flips the
    /// default for whole-tree mutation runs.
    pub weakened_fda: bool,
}

impl CanelyConfig {
    /// The evaluation defaults: 1 Mbps figures with `Tm = 30 ms`,
    /// `Th = 5 ms`, detection latency bound well under "tens of ms".
    pub fn default_at(rate: BitRate) -> Self {
        CanelyConfig {
            heartbeat_period: BitTime::from_ms(5, rate),
            tx_delay_bound: BitTime::from_us(2_500, rate),
            membership_cycle: BitTime::from_ms(30, rate),
            rha_timeout: BitTime::from_ms(5, rate),
            join_wait: BitTime::from_ms(60, rate),
            inconsistent_degree: 2,
            implicit_heartbeats: true,
            activity_from_all_rtr: false,
            rejoin_on_failed_join: true,
            expulsion_rejoin_delay: Some(BitTime::from_ms(240, rate)),
            detector: DetectorKind::Surveillance,
            weakened_fda: cfg!(feature = "weakened-fda"),
        }
    }

    /// Sets `Tm`, the membership cycle period.
    pub fn with_membership_cycle(mut self, tm: BitTime) -> Self {
        self.membership_cycle = tm;
        self
    }

    /// Sets `Th`, the heartbeat period.
    pub fn with_heartbeat_period(mut self, th: BitTime) -> Self {
        self.heartbeat_period = th;
        self
    }

    /// Sets `j`, the inconsistent omission degree bound.
    pub fn with_inconsistent_degree(mut self, j: u32) -> Self {
        self.inconsistent_degree = j;
        self
    }

    /// Disables implicit heartbeats (every node then relies on ELS).
    pub fn without_implicit_heartbeats(mut self) -> Self {
        self.implicit_heartbeats = false;
        self
    }

    /// Enables the deliberately broken failure-detection mutant (see
    /// [`CanelyConfig::weakened_fda`]). For fault-injection campaigns
    /// only.
    pub fn with_weakened_fda(mut self) -> Self {
        self.weakened_fda = true;
        self
    }

    /// Selects the failure-detector backend.
    pub fn with_detector(mut self, detector: DetectorKind) -> Self {
        self.detector = detector;
        self
    }

    /// The remote surveillance margin actually granted beyond `Th`.
    /// The correct protocol grants the full `Ttd = Tltm + Tina`; the
    /// weakened mutant grants a quarter of it (`Tltm`-scale: enough
    /// for queuing/arbitration jitter, but the `Tina` allowance for
    /// bus inaccessibility is forgotten).
    pub fn surveillance_margin(&self) -> BitTime {
        if self.weakened_fda {
            BitTime::new(self.tx_delay_bound.as_u64() / 4)
        } else {
            self.tx_delay_bound
        }
    }

    /// The bound on node crash detection latency at a remote node.
    /// For the paper's surveillance detector a silent node is detected
    /// within `Th + Ttd` of its last scheduled life-sign (Sec. 6.1:
    /// "the upper bound specified for the delay in the detection of
    /// node crash failures is preserved"); the alternative backends
    /// add their own margin on top (see
    /// [`DetectorKind::extra_detection_margin`]).
    pub fn detection_latency_bound(&self) -> BitTime {
        self.heartbeat_period
            + self.tx_delay_bound
            + self
                .detector
                .extra_detection_margin(self.heartbeat_period, self.tx_delay_bound)
    }

    /// Validates parameter coherence.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint:
    /// durations must be positive, `Tjoin-wait > Tm` (footnote 9) and
    /// `Trha < Tm` (an agreement must finish within its cycle).
    pub fn validate(&self) -> Result<(), String> {
        if self.heartbeat_period.is_zero() {
            return Err("heartbeat period (Th) must be positive".into());
        }
        if self.membership_cycle.is_zero() {
            return Err("membership cycle (Tm) must be positive".into());
        }
        if self.rha_timeout.is_zero() {
            return Err("RHA timeout (Trha) must be positive".into());
        }
        if self.join_wait <= self.membership_cycle {
            return Err("join wait (Tjoin-wait) must exceed the membership cycle (Tm)".into());
        }
        if self.rha_timeout >= self.membership_cycle {
            return Err("RHA timeout (Trha) must be below the membership cycle (Tm)".into());
        }
        Ok(())
    }
}

impl Default for CanelyConfig {
    fn default() -> Self {
        CanelyConfig::default_at(BitRate::MBPS_1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_paper_scaled() {
        let cfg = CanelyConfig::default();
        cfg.validate().expect("defaults must validate");
        assert_eq!(cfg.membership_cycle, BitTime::new(30_000));
        // "Membership … tens of ms latency" (Fig. 11): the detection
        // bound must stay well below 100 ms at 1 Mbps.
        assert!(cfg.detection_latency_bound() < BitTime::new(100_000));
    }

    #[test]
    fn builders_compose() {
        let cfg = CanelyConfig::default()
            .with_membership_cycle(BitTime::new(90_000))
            .with_heartbeat_period(BitTime::new(9_000))
            .with_inconsistent_degree(3)
            .without_implicit_heartbeats();
        assert_eq!(cfg.membership_cycle, BitTime::new(90_000));
        assert_eq!(cfg.heartbeat_period, BitTime::new(9_000));
        assert_eq!(cfg.inconsistent_degree, 3);
        assert!(!cfg.implicit_heartbeats);
    }

    #[test]
    fn validation_catches_inverted_timeouts() {
        let cfg = CanelyConfig::default().with_membership_cycle(BitTime::new(1_000));
        assert!(cfg.validate().is_err());

        let cfg = CanelyConfig {
            join_wait: CanelyConfig::default().membership_cycle,
            ..CanelyConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("join wait"));

        let cfg = CanelyConfig {
            heartbeat_period: BitTime::ZERO,
            ..CanelyConfig::default()
        };
        assert!(cfg.validate().unwrap_err().contains("Th"));
    }

    #[test]
    fn weakened_mutant_shrinks_surveillance_margin() {
        let correct = CanelyConfig::default();
        let broken = CanelyConfig::default().with_weakened_fda();
        assert_eq!(correct.surveillance_margin(), correct.tx_delay_bound);
        // The mutant's margin covers Tltm-scale queuing but not the
        // CANELy inaccessibility bound Tina = 2160 bit-times.
        assert_eq!(
            broken.surveillance_margin(),
            BitTime::new(correct.tx_delay_bound.as_u64() / 4)
        );
        assert!(broken.surveillance_margin() < BitTime::new(2_160));
        // Still a valid configuration: the mutant must run, not panic.
        broken.validate().expect("mutant config must validate");
    }

    #[test]
    fn detector_backends_widen_the_detection_bound() {
        let base = CanelyConfig::default();
        assert_eq!(base.detector, DetectorKind::Surveillance);
        for kind in [DetectorKind::Swim, DetectorKind::AddPhi] {
            let alt = CanelyConfig::default().with_detector(kind);
            assert!(alt.detection_latency_bound() > base.detection_latency_bound());
            alt.validate().expect("alternative backends must validate");
        }
    }

    #[test]
    fn scales_with_bit_rate() {
        // At 50 kbps a 30 ms cycle is only 1500 bit-times.
        let slow = CanelyConfig::default_at(BitRate::KBPS_50);
        assert_eq!(slow.membership_cycle, BitTime::new(1_500));
    }
}
