//! Reception History Agreement — the RHA micro-protocol (paper Fig. 7).
//!
//! RHA makes all correct nodes agree on the value of a *reception
//! history vector* (RHV): the set of nodes that should compose the
//! next membership view, given the join/leave requests each node has
//! (possibly inconsistently) received.
//!
//! Operation, per the pseudo-code:
//!
//! * a **full member** starts the protocol on `rha-can.req` with the
//!   initial vector `((Vs ∪ Vj) − Vl) ∩ Vw` (line a03) and broadcasts
//!   it as an *RHV signal* — a data frame whose mid carries the vector
//!   cardinality `#V_RHV` and the transmitter, and whose 8-byte data
//!   field is the vector itself;
//! * any node receiving an RHV signal while idle joins the protocol,
//!   non-members adopting the received vector verbatim (line a05);
//! * on receiving a vector that *excludes* a node still present
//!   locally, a node aborts its pending signal, intersects, and
//!   re-broadcasts (lines r04–r07) — vectors shrink monotonically, so
//!   the number of rounds is bounded;
//! * once `j` copies of the current local value have been observed
//!   (LCAN4's inconsistent-omission bound), a pending own transmission
//!   is aborted to save bandwidth (lines r08–r09);
//! * the protocol terminates at `Trha` after each node's own start,
//!   delivering `rha-can.nty(END, V_RHV)` upstairs (lines r14–r18).

use crate::obs::{EventSink, ObsTimer, ProtocolEvent};
use crate::tags::TimerOwner;
use can_controller::{Ctx, TimerId};
use can_types::{BitTime, Mid, MsgType, NodeId, NodeSet, Payload};
use std::collections::HashMap;

/// Notifications RHA delivers to the membership layer
/// (`rha-can.nty`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RhaNotification {
    /// `rha-can.nty(INIT, ∅)`: protocol execution started at this
    /// node. The membership protocol uses it to (re)synchronize its
    /// cycle timer (Fig. 9, line s17).
    Init,
    /// `rha-can.nty(END, V_RHV)`: protocol execution finished; the
    /// payload is the agreed reception history vector.
    End(NodeSet),
}

/// The local-variable snapshot RHA shares with the membership protocol
/// (Fig. 7, line i04: "Shared Variables: full-member (`Vs`), joining
/// (`Vj`) and leaving (`Vl`) node sets").
#[derive(Debug, Clone, Copy, Default)]
pub struct SharedSets {
    /// `Vs`: the site membership view.
    pub vs: NodeSet,
    /// `Vj`: nodes in a joining process.
    pub vj: NodeSet,
    /// `Vl`: nodes requesting withdrawal.
    pub vl: NodeSet,
}

/// The RHA micro-protocol entity of one node.
#[derive(Debug)]
pub struct Rha {
    /// `Trha`: maximum termination time (line a01).
    trha: BitTime,
    /// `j`: inconsistent omission degree bound (line r08).
    j: u32,
    /// `tid`: the termination alarm; `None` means idle.
    tid: Option<TimerId>,
    /// `V_RHV`: the local reception history vector proposal.
    v_rhv: NodeSet,
    /// `rhv_ndup`: duplicates seen, per RHV signal *value*.
    ndup: HashMap<NodeSet, u32>,
    /// Executions completed (introspection).
    executions: u64,
    /// Own RHV broadcasts in the current execution (metrics).
    sends: u32,
    /// Structured-event sink (disabled by default).
    obs: EventSink,
}

impl Rha {
    /// Creates an RHA entity with termination time `trha` and
    /// inconsistent-degree bound `j`.
    pub fn new(trha: BitTime, j: u32) -> Self {
        Rha {
            trha,
            j,
            tid: None,
            v_rhv: NodeSet::EMPTY,
            ndup: HashMap::new(),
            executions: 0,
            sends: 0,
            obs: EventSink::disabled(),
        }
    }

    /// Installs the structured-event sink (see [`crate::obs`]).
    pub fn set_sink(&mut self, sink: EventSink) {
        self.obs = sink;
    }

    /// The mid of an RHV signal: type RHA, reference `#V_RHV`,
    /// node = transmitter (unique per sender — RHV signals are data
    /// frames and must not collide).
    pub fn rhv_mid(transmitter: NodeId, vector: NodeSet) -> Mid {
        Mid::new(MsgType::Rha, vector.len() as u16, transmitter)
    }

    /// Whether a protocol execution is in progress at this node.
    pub fn is_running(&self) -> bool {
        self.tid.is_some()
    }

    /// The current local vector proposal (meaningful while running).
    pub fn current_vector(&self) -> NodeSet {
        self.v_rhv
    }

    /// Number of completed executions at this node.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// `rha-can.req()`: protocol invocation by the membership layer.
    /// Only full members may start in isolation (Fig. 7, line s00 —
    /// the caller guarantees `p ∈ Vs`). No-op if already running.
    pub fn request(&mut self, ctx: &mut Ctx<'_>, sets: SharedSets) -> Option<RhaNotification> {
        if self.tid.is_some() {
            return None; // s01 guard
        }
        Some(self.init_send(ctx, NodeSet::ALL, true, sets)) // s02: Vw = U
    }

    /// `rha-init-send` (Fig. 7, lines a00–a09).
    fn init_send(
        &mut self,
        ctx: &mut Ctx<'_>,
        vw: NodeSet,
        full_member: bool,
        sets: SharedSets,
    ) -> RhaNotification {
        self.tid = Some(ctx.start_alarm(self.trha, TimerOwner::RhaTermination.encode())); // a01
        self.obs.emit(
            ctx.now(),
            ctx.me(),
            ProtocolEvent::TimerArmed {
                timer: ObsTimer::RhaTermination,
                deadline: ctx.now() + self.trha,
            },
        );
        self.v_rhv = if full_member {
            ((sets.vs | sets.vj) - sets.vl) & vw // a03
        } else {
            vw // a05: non-members use the received vector
        };
        self.sends = 0;
        self.obs.emit(
            ctx.now(),
            ctx.me(),
            ProtocolEvent::RhaStarted {
                proposal: self.v_rhv,
                full_member,
            },
        );
        self.broadcast_current(ctx); // a07
        ctx.journal(format_args!(
            "RHA: started, proposing {}",
            self.v_rhv
        ));
        RhaNotification::Init // a08
    }

    fn broadcast_current(&mut self, ctx: &mut Ctx<'_>) {
        let mid = Self::rhv_mid(ctx.me(), self.v_rhv);
        let payload = Payload::from_slice(&self.v_rhv.to_bytes()).expect("8-byte vector");
        ctx.can_data_req(mid, payload);
        self.sends += 1;
        self.obs
            .emit(ctx.now(), ctx.me(), ProtocolEvent::RhvSent { vector: self.v_rhv });
    }

    /// Handles an arriving RHV signal (Fig. 7, lines r00–r13; own
    /// transmissions included). `full_member` tells whether the local
    /// node currently belongs to the site membership view.
    pub fn on_data_ind(
        &mut self,
        ctx: &mut Ctx<'_>,
        mid: Mid,
        payload: &Payload,
        full_member: bool,
        sets: SharedSets,
    ) -> Option<RhaNotification> {
        debug_assert_eq!(mid.msg_type(), MsgType::Rha);
        let Ok(bytes) = <[u8; 8]>::try_from(payload.as_slice()) else {
            return None; // malformed RHV signal: ignore
        };
        let v_remote = NodeSet::from_bytes(bytes);
        *self.ndup.entry(v_remote).or_default() += 1; // r01
        self.obs.emit(
            ctx.now(),
            ctx.me(),
            ProtocolEvent::RhvReceived {
                from: mid.node(),
                vector: v_remote,
            },
        );

        if self.tid.is_none() {
            // r02–r03: join the execution using the received vector.
            return Some(self.init_send(ctx, v_remote, full_member, sets));
        }
        if (self.v_rhv & v_remote) != self.v_rhv {
            // r04–r07: the remote vector excludes nodes we still hold.
            ctx.can_abort_req(Self::rhv_mid(ctx.me(), self.v_rhv)); // r05
            self.v_rhv &= v_remote; // r06
            self.obs
                .emit(ctx.now(), ctx.me(), ProtocolEvent::RhaNarrowed { vector: self.v_rhv });
            self.broadcast_current(ctx); // r07
            ctx.journal(format_args!("RHA: narrowed to {}", self.v_rhv));
        } else if self.ndup.get(&self.v_rhv).copied().unwrap_or(0) >= self.j {
            // r08–r09: enough copies of our value circulate already.
            ctx.can_abort_req(Self::rhv_mid(ctx.me(), self.v_rhv));
            self.obs
                .emit(ctx.now(), ctx.me(), ProtocolEvent::RhaQuenched { vector: self.v_rhv });
        }
        None
    }

    /// Handles the expiry of the RHA termination alarm (Fig. 7, lines
    /// r14–r18). Returns the END notification with the agreed vector.
    pub fn on_timeout(&mut self, ctx: &mut Ctx<'_>) -> RhaNotification {
        let vector = self.v_rhv;
        self.obs.emit(
            ctx.now(),
            ctx.me(),
            ProtocolEvent::RhaSettled {
                vector,
                broadcasts: self.sends,
            },
        );
        self.tid = None; // r16
        self.v_rhv = NodeSet::EMPTY; // r17
        self.ndup.clear(); // new execution starts fresh
        self.executions += 1;
        self.sends = 0;
        ctx.journal(format_args!("RHA: ended with {vector}"));
        RhaNotification::End(vector) // r15
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_controller::{Controller, TimerWheel};

    struct Harness {
        ctl: Controller,
        timers: TimerWheel,
        journal: Vec<can_controller::JournalEntry>,
        me: NodeId,
        now: BitTime,
    }

    impl Harness {
        fn new(me: u8) -> Self {
            Harness {
                ctl: Controller::new(),
                timers: TimerWheel::new(),
                journal: Vec::new(),
                me: NodeId::new(me),
                now: BitTime::ZERO,
            }
        }

        fn ctx<R>(&mut self, f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
            let mut ctx = Ctx::new(
                self.now,
                self.me,
                &mut self.ctl,
                &mut self.timers,
                &mut self.journal,
                false,
            );
            f(&mut ctx)
        }
    }

    fn sets(vs: u64, vj: u64, vl: u64) -> SharedSets {
        SharedSets {
            vs: NodeSet::from_bits(vs),
            vj: NodeSet::from_bits(vj),
            vl: NodeSet::from_bits(vl),
        }
    }

    fn signal(from: u8, bits: u64) -> (Mid, Payload) {
        let v = NodeSet::from_bits(bits);
        (
            Rha::rhv_mid(NodeId::new(from), v),
            Payload::from_slice(&v.to_bytes()).unwrap(),
        )
    }

    #[test]
    fn member_start_proposes_vs_plus_joiners_minus_leavers() {
        let mut h = Harness::new(0);
        let mut rha = Rha::new(BitTime::new(5_000), 2);
        let nty = h.ctx(|ctx| rha.request(ctx, sets(0b0111, 0b1000, 0b0001)));
        assert_eq!(nty, Some(RhaNotification::Init));
        assert!(rha.is_running());
        // (Vs ∪ Vj) − Vl = {1,2,3}.
        assert_eq!(rha.current_vector(), NodeSet::from_bits(0b1110));
        assert_eq!(h.ctl.queue_len(), 1, "RHV signal queued");
    }

    #[test]
    fn request_while_running_is_a_no_op() {
        let mut h = Harness::new(0);
        let mut rha = Rha::new(BitTime::new(5_000), 2);
        h.ctx(|ctx| rha.request(ctx, sets(0b1, 0, 0)));
        let again = h.ctx(|ctx| rha.request(ctx, sets(0b1, 0, 0)));
        assert_eq!(again, None);
        assert_eq!(h.ctl.queue_len(), 1);
    }

    #[test]
    fn idle_non_member_adopts_received_vector() {
        let mut h = Harness::new(5);
        let mut rha = Rha::new(BitTime::new(5_000), 2);
        let (mid, payload) = signal(1, 0b10_0111);
        let nty = h.ctx(|ctx| rha.on_data_ind(ctx, mid, &payload, false, sets(0, 0b10_0000, 0)));
        assert_eq!(nty, Some(RhaNotification::Init));
        // a05: uses the received vector verbatim.
        assert_eq!(rha.current_vector(), NodeSet::from_bits(0b10_0111));
    }

    #[test]
    fn idle_member_intersects_with_received_vector() {
        let mut h = Harness::new(0);
        let mut rha = Rha::new(BitTime::new(5_000), 2);
        // Local knowledge: view {0,1,2}, joiner {3}.
        // Remote vector excludes node 2.
        let (mid, payload) = signal(1, 0b1011);
        h.ctx(|ctx| rha.on_data_ind(ctx, mid, &payload, true, sets(0b0111, 0b1000, 0)));
        // ((Vs ∪ Vj) − Vl) ∩ Vw = {0,1,3}.
        assert_eq!(rha.current_vector(), NodeSet::from_bits(0b1011));
    }

    #[test]
    fn conflicting_vector_triggers_abort_intersect_rebroadcast() {
        let mut h = Harness::new(0);
        let mut rha = Rha::new(BitTime::new(5_000), 99);
        h.ctx(|ctx| rha.request(ctx, sets(0b1111, 0, 0)));
        assert_eq!(h.ctl.queue_len(), 1);
        // Remote proposes {0,1} — smaller than our {0,1,2,3}.
        let (mid, payload) = signal(2, 0b0011);
        let nty = h.ctx(|ctx| rha.on_data_ind(ctx, mid, &payload, true, sets(0b1111, 0, 0)));
        assert_eq!(nty, None);
        assert_eq!(rha.current_vector(), NodeSet::from_bits(0b0011));
        // Old signal aborted, new one queued: still exactly one pending.
        assert_eq!(h.ctl.queue_len(), 1);
        let head = h.ctl.head().unwrap();
        let head_mid = Mid::from_can_id(head.id()).unwrap();
        assert_eq!(head_mid.reference(), 2, "mid carries new #V_RHV");
    }

    #[test]
    fn superset_vector_does_not_trigger_rebroadcast() {
        let mut h = Harness::new(0);
        let mut rha = Rha::new(BitTime::new(5_000), 99);
        h.ctx(|ctx| rha.request(ctx, sets(0b0011, 0, 0)));
        let (mid, payload) = signal(2, 0b1111);
        h.ctx(|ctx| rha.on_data_ind(ctx, mid, &payload, true, sets(0b0011, 0, 0)));
        // Our vector is a subset of the remote one: nothing to remove.
        assert_eq!(rha.current_vector(), NodeSet::from_bits(0b0011));
        assert_eq!(h.ctl.queue_len(), 1, "original signal still pending");
    }

    #[test]
    fn duplicate_bound_aborts_pending_signal() {
        let mut h = Harness::new(0);
        let mut rha = Rha::new(BitTime::new(5_000), 2);
        h.ctx(|ctx| rha.request(ctx, sets(0b0011, 0, 0)));
        assert_eq!(h.ctl.queue_len(), 1);
        // Two copies of our exact value arrive (j = 2).
        let (mid, payload) = signal(1, 0b0011);
        h.ctx(|ctx| rha.on_data_ind(ctx, mid, &payload, true, sets(0b0011, 0, 0)));
        assert_eq!(h.ctl.queue_len(), 1, "first copy: below bound");
        let (mid2, payload2) = signal(2, 0b0011);
        h.ctx(|ctx| rha.on_data_ind(ctx, mid2, &payload2, true, sets(0b0011, 0, 0)));
        assert_eq!(h.ctl.queue_len(), 0, "j-th copy aborts own pending signal");
    }

    #[test]
    fn timeout_delivers_end_and_resets() {
        let mut h = Harness::new(0);
        let mut rha = Rha::new(BitTime::new(5_000), 2);
        h.ctx(|ctx| rha.request(ctx, sets(0b0101, 0, 0)));
        let nty = h.ctx(|ctx| rha.on_timeout(ctx));
        assert_eq!(nty, RhaNotification::End(NodeSet::from_bits(0b0101)));
        assert!(!rha.is_running());
        assert_eq!(rha.current_vector(), NodeSet::EMPTY);
        assert_eq!(rha.executions(), 1);
        // A new execution can start.
        let again = h.ctx(|ctx| rha.request(ctx, sets(0b0101, 0, 0)));
        assert_eq!(again, Some(RhaNotification::Init));
    }

    #[test]
    fn malformed_payload_ignored() {
        let mut h = Harness::new(0);
        let mut rha = Rha::new(BitTime::new(5_000), 2);
        let mid = Rha::rhv_mid(NodeId::new(1), NodeSet::EMPTY);
        let bad = Payload::from_slice(&[1, 2, 3]).unwrap();
        let nty = h.ctx(|ctx| rha.on_data_ind(ctx, mid, &bad, true, sets(0, 0, 0)));
        assert_eq!(nty, None);
        assert!(!rha.is_running());
    }

    #[test]
    fn vectors_shrink_monotonically() {
        // Convergence argument: every update is an intersection.
        let mut h = Harness::new(0);
        let mut rha = Rha::new(BitTime::new(5_000), 99);
        h.ctx(|ctx| rha.request(ctx, sets(0xFF, 0, 0)));
        let mut previous = rha.current_vector();
        for (from, bits) in [(1u8, 0x7Fu64), (2, 0x3F), (3, 0x0F)] {
            let (mid, payload) = signal(from, bits);
            h.ctx(|ctx| rha.on_data_ind(ctx, mid, &payload, true, sets(0xFF, 0, 0)));
            assert!(rha.current_vector().is_subset(previous));
            previous = rha.current_vector();
        }
        assert_eq!(previous, NodeSet::from_bits(0x0F));
    }
}
