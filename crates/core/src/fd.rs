//! Node failure detection: the pluggable detector seam and the
//! paper's surveillance-timer protocol (Fig. 8).
//!
//! The stack talks to failure detection exclusively through the
//! [`FailureDetector`] trait, so the surveillance protocol of the
//! paper is one *backend* among several (see [`crate::detectors`] for
//! the SWIM-style and ADD-channel ◇P alternatives, and
//! `docs/DETECTORS.md` for the contract and a measured comparison).
//!
//! The default backend, [`SurveillanceDetector`], keeps one
//! surveillance timer per monitored node:
//!
//! * the **local** timer has duration `Th` — when it expires the node
//!   has been silent for a heartbeat period and must broadcast an
//!   explicit life-sign (ELS remote frame);
//! * **remote** timers have duration `Th + Ttd` (heartbeat period plus
//!   the bounded network transmission delay of MCAN4) — expiry means
//!   the remote node gave no sign of life in time, and the FDA
//!   micro-protocol is invoked to disseminate the failure consistently.
//!
//! Node activity is signalled *implicitly* by normal data traffic
//! (through the `can-data.nty` driver extension) and *explicitly* by
//! ELS frames; either restarts the corresponding surveillance timer.
//! "Explicit life-sign messages may need to be issued, but only if and
//! when the time between message transmit requests is higher than the
//! heartbeat period" — which is precisely what the local-timer rule
//! implements.

use crate::obs::{EventSink, ObsTimer, ProtocolEvent};
use crate::tags::TimerOwner;
use can_controller::{Ctx, TimerId};
use can_types::{BitTime, Mid, NodeId, NodeSet};
use std::collections::HashMap;

/// Actions the failure detector hands back to the enclosing stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FdAction {
    /// A remote node's surveillance timer expired: invoke
    /// `fda-can.req(r)` to disseminate the crash consistently
    /// (Fig. 8, line f10).
    Suspect(NodeId),
    /// `fd-can.nty(r)`: deliver the (agreed) failure notification to
    /// the companion membership protocol (line f15).
    Notify(NodeId),
}

/// A timer expiry routed to a failure-detector backend by the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorTimer {
    /// A per-node timer (tag [`TimerOwner::Surveillance`]): the
    /// surveillance timer of the paper detector, or a probe
    /// acknowledgement deadline of the SWIM-style backend.
    Node(NodeId),
    /// The backend's protocol period tick (tag
    /// [`TimerOwner::DetectorPeriod`]), used by round-based backends.
    Period,
}

pub use crate::tags::els_mid;

/// Live-telemetry counter handles shared by all failure-detector
/// backends (see `docs/METRICS.md`). All handles default to disabled
/// (one branch per bump, no allocation), so a stack without telemetry
/// pays nothing; the campaign engine installs enabled handles via
/// `CanelyStack::set_detector_metrics` when a registry is attached.
/// Counters are bumped at the same sites that emit the corresponding
/// structured events, keeping live numbers and trace in agreement.
#[derive(Debug, Clone, Default)]
pub struct DetectorMetrics {
    /// Suspicions raised (`fd.suspect` events).
    pub suspicions: canely_metrics::Counter,
    /// Explicit life-signs issued (`fd.lifesign.tx` events).
    pub lifesigns: canely_metrics::Counter,
    /// Backend-specific probe frames issued (SWIM pings/ping-reqs;
    /// zero for backends without a wire protocol).
    pub probes: canely_metrics::Counter,
}

/// The failure-detection seam of the stack.
///
/// `CanelyStack` owns one boxed backend per node and routes the
/// protocol's inputs through this trait: membership `START`/`STOP`
/// requests, node activity (implicit heartbeats and explicit
/// life-signs), timer expiries tagged [`TimerOwner::Surveillance`] or
/// [`TimerOwner::DetectorPeriod`], agreed FDA failure notifications,
/// and — for backends with their own wire protocol — incoming
/// [`can_types::MsgType::Ping`] frames. Time reaches the backend through the
/// bit-time clock of the [`Ctx`] handle, and structured events leave
/// through the installed [`EventSink`]; a backend holds no other
/// channel to the outside world, which is what makes the campaign
/// oracle backend-agnostic.
///
/// Every backend must uphold the contract of Fig. 8's interface:
/// suspicions surface only as [`FdAction::Suspect`] (the stack then
/// invokes FDA for consistent dissemination), agreed failures arrive
/// via [`FailureDetector::on_fda_nty`] and must yield
/// [`FdAction::Notify`], and a stopped node must never be suspected
/// by a stale expiry.
pub trait FailureDetector: std::fmt::Debug {
    /// Installs the structured-event sink (see [`crate::obs`]).
    fn set_sink(&mut self, sink: EventSink);

    /// Installs live-telemetry counters (see [`DetectorMetrics`]).
    /// Backends that skip the default no-op bump the counters at the
    /// same sites that emit the corresponding structured events, so
    /// the live numbers always agree with the trace. Disabled handles
    /// cost one branch per bump.
    fn set_metrics(&mut self, _metrics: DetectorMetrics) {}

    /// `fd-can.req(START, r)`: begin monitoring node `r` (Fig. 8,
    /// lines f00–f02).
    fn start(&mut self, ctx: &mut Ctx<'_>, r: NodeId);

    /// `fd-can.req(STOP, r)`: stop monitoring node `r` (lines
    /// f17–f19).
    fn stop(&mut self, ctx: &mut Ctx<'_>, r: NodeId);

    /// Stops all monitoring (used when the node leaves the membership
    /// service).
    fn stop_all(&mut self, ctx: &mut Ctx<'_>);

    /// Node activity detected: a data frame from `r` arrived
    /// (`can-data.nty`) or an explicit life-sign of `r` was heard
    /// (`can-rtr.ind(mid{ELS,r})`). Activity of unmonitored nodes is
    /// ignored.
    fn on_activity(&mut self, ctx: &mut Ctx<'_>, r: NodeId);

    /// A timer owned by the detector expired. Returning
    /// [`FdAction::Suspect`] makes the stack invoke `fda-can.req`.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: DetectorTimer) -> Option<FdAction>;

    /// `fda-can.nty(r)` received: the failure of `r` is agreed —
    /// release all state about `r` and notify the membership layer
    /// (lines f13–f16).
    fn on_fda_nty(&mut self, ctx: &mut Ctx<'_>, r: NodeId) -> FdAction;

    /// A detector-protocol frame ([`can_types::MsgType::Ping`]) was observed on
    /// the bus. Backends without a wire protocol ignore it.
    fn on_detector_frame(&mut self, _ctx: &mut Ctx<'_>, _mid: Mid) {}

    /// The set of currently monitored nodes.
    fn monitored(&self) -> NodeSet;

    /// Number of explicit life-signs this node has issued.
    fn els_sent(&self) -> u64;

    /// Total detector control frames issued by this node (life-signs
    /// plus any backend-specific probe traffic).
    fn control_frames(&self) -> u64 {
        self.els_sent()
    }
}

/// Selects a failure-detector backend (see `docs/DETECTORS.md`).
///
/// The same campaign matrices and invariant oracle run against every
/// backend; selection threads through [`crate::CanelyConfig`], the
/// scenario DSL (`detector <key>`), and `.campaign` specs
/// (`detector <key>...`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DetectorKind {
    /// The paper's surveillance-timer protocol
    /// ([`SurveillanceDetector`], Fig. 8). The default.
    #[default]
    Surveillance,
    /// SWIM-style round-based probing with indirect pings
    /// ([`crate::detectors::SwimDetector`]).
    Swim,
    /// ADD-channel-style ◇P heartbeats with adaptive timeouts
    /// ([`crate::detectors::AddPhiDetector`], after Kumar & Welch).
    AddPhi,
}

impl DetectorKind {
    /// Every backend, in documentation order.
    pub const ALL: [DetectorKind; 3] = [
        DetectorKind::Surveillance,
        DetectorKind::Swim,
        DetectorKind::AddPhi,
    ];

    /// The stable textual key used by the scenario DSL, `.campaign`
    /// specs, and reports.
    pub fn key(self) -> &'static str {
        match self {
            DetectorKind::Surveillance => "surveillance",
            DetectorKind::Swim => "swim",
            DetectorKind::AddPhi => "add-phi",
        }
    }

    /// Parses a textual key (inverse of [`DetectorKind::key`]).
    pub fn from_key(key: &str) -> Option<DetectorKind> {
        match key {
            "surveillance" => Some(DetectorKind::Surveillance),
            "swim" => Some(DetectorKind::Swim),
            "add-phi" => Some(DetectorKind::AddPhi),
            _ => None,
        }
    }

    /// Builds a backend instance with heartbeat period `th` and
    /// transmission-delay margin `ttd`.
    pub fn build(self, th: BitTime, ttd: BitTime) -> Box<dyn FailureDetector> {
        match self {
            DetectorKind::Surveillance => Box::new(SurveillanceDetector::new(th, ttd)),
            DetectorKind::Swim => Box::new(crate::detectors::SwimDetector::new(th, ttd)),
            DetectorKind::AddPhi => Box::new(crate::detectors::AddPhiDetector::new(th, ttd)),
        }
    }

    /// Worst-case detection margin this backend needs *beyond* the
    /// surveillance detector's `Th + Ttd` timer, expressed in terms of
    /// the same `th`/`ttd` operating point. Used by the campaign
    /// engine to widen the oracle's detection-latency bound per
    /// backend (see `canely-campaign::spec`).
    ///
    /// * surveillance — zero, it *is* the baseline;
    /// * SWIM — a stale target waits up to one period for staleness
    ///   plus one period for the next probe round, then a direct and
    ///   an indirect probe phase (`ttd` and `2·ttd`);
    /// * ADD ◇P — the adaptive timeout is capped at twice the static
    ///   floor `th + ttd`.
    pub fn extra_detection_margin(self, th: BitTime, ttd: BitTime) -> BitTime {
        match self {
            DetectorKind::Surveillance => BitTime::ZERO,
            DetectorKind::Swim => th + th + ttd + ttd + ttd,
            DetectorKind::AddPhi => th + ttd,
        }
    }
}

impl std::fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// The paper's failure detection protocol entity (Fig. 8): one
/// surveillance timer per monitored node, restarted by implicit and
/// explicit life-signs. The default [`FailureDetector`] backend.
#[derive(Debug)]
pub struct SurveillanceDetector {
    /// `Th`: heartbeat period (local timer duration).
    th: BitTime,
    /// `Ttd`: network transmission delay bound added for remote nodes.
    ttd: BitTime,
    /// `tid(r)`: the armed surveillance timers.
    timers: HashMap<NodeId, TimerId>,
    /// The set of nodes this detector watches (`fd-can.req(START)`ed).
    monitored: NodeSet,
    /// Explicit life-signs issued (introspection / bandwidth studies).
    els_sent: u64,
    /// Structured-event sink (disabled by default).
    obs: EventSink,
    /// Live-telemetry counters (disabled by default).
    metrics: DetectorMetrics,
}

impl SurveillanceDetector {
    /// Creates a detector with heartbeat period `th` and transmission
    /// delay bound `ttd`.
    pub fn new(th: BitTime, ttd: BitTime) -> Self {
        SurveillanceDetector {
            th,
            ttd,
            timers: HashMap::new(),
            monitored: NodeSet::EMPTY,
            els_sent: 0,
            obs: EventSink::disabled(),
            metrics: DetectorMetrics::default(),
        }
    }

    /// The mid of an explicit life-sign of node `r`.
    pub fn els_mid(r: NodeId) -> Mid {
        els_mid(r)
    }

    /// `fd-alarm-start(r)` (lines a00–a06): (re)arms the surveillance
    /// timer — `Th` for the local node, `Th + Ttd` for remote nodes.
    fn arm(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        if let Some(old) = self.timers.remove(&r) {
            ctx.cancel_alarm(old);
        }
        let duration = if r == ctx.me() {
            self.th // a02
        } else {
            // a04, plus a deterministic per-observer skew: real nodes
            // have independent oscillators, so surveillance timers
            // armed by the same frame delivery do not expire in
            // lock-step. The spacing (512 bit-times per rank) exceeds
            // a worst-case frame plus error signalling, so the first
            // detector's failure-sign reaches — and cancels — every
            // later observer before it fires. (Perfectly simultaneous
            // expiry would make all observers transmit the sign in one
            // cluster, leaving no same-side receiver to acknowledge it
            // under a partition.)
            self.th + self.ttd + BitTime::new(u64::from(ctx.me().as_u8()) * 512)
        };
        let tid = ctx.start_alarm(duration, TimerOwner::Surveillance(r).encode());
        self.obs.emit(
            ctx.now(),
            ctx.me(),
            ProtocolEvent::TimerArmed {
                timer: ObsTimer::Surveillance(r),
                deadline: ctx.now() + duration,
            },
        );
        self.timers.insert(r, tid);
    }
}

impl FailureDetector for SurveillanceDetector {
    fn set_sink(&mut self, sink: EventSink) {
        self.obs = sink;
    }

    fn set_metrics(&mut self, metrics: DetectorMetrics) {
        self.metrics = metrics;
    }

    /// `fd-can.req(START, r)` (Fig. 8, lines f00–f02).
    fn start(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        self.monitored.insert(r);
        self.arm(ctx, r); // f01
    }

    /// `fd-can.req(STOP, r)` (lines f17–f19).
    fn stop(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        self.monitored.remove(r);
        if let Some(tid) = self.timers.remove(&r) {
            ctx.cancel_alarm(tid); // f18
        }
    }

    fn stop_all(&mut self, ctx: &mut Ctx<'_>) {
        for (_, tid) in self.timers.drain() {
            ctx.cancel_alarm(tid);
        }
        self.monitored = NodeSet::EMPTY;
    }

    /// Restarts the surveillance timer of `r` (lines f03–f05).
    fn on_activity(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        if self.monitored.contains(r) {
            self.arm(ctx, r); // f04
        }
    }

    /// A surveillance timer expired (lines f06–f12). For the local
    /// node an explicit life-sign is broadcast (its own reception will
    /// restart the timer); for a remote node the caller must invoke
    /// FDA.
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, timer: DetectorTimer) -> Option<FdAction> {
        let DetectorTimer::Node(r) = timer else {
            return None; // the paper detector has no period tick
        };
        if !self.monitored.contains(r) {
            return None; // stale expiry after STOP
        }
        self.timers.remove(&r);
        if r == ctx.me() {
            ctx.can_rtr_req(els_mid(r)); // f08
            self.els_sent += 1;
            self.obs.emit(ctx.now(), ctx.me(), ProtocolEvent::LifeSignSent);
            self.metrics.lifesigns.inc();
            ctx.journal("FD: broadcasting explicit life-sign");
            None
        } else {
            self.obs
                .emit(ctx.now(), ctx.me(), ProtocolEvent::SuspectRaised { suspect: r });
            self.metrics.suspicions.inc();
            ctx.journal(format_args!("FD: node {r} silent — suspecting"));
            Some(FdAction::Suspect(r)) // f10
        }
    }

    fn on_fda_nty(&mut self, ctx: &mut Ctx<'_>, r: NodeId) -> FdAction {
        self.monitored.remove(r);
        if let Some(tid) = self.timers.remove(&r) {
            ctx.cancel_alarm(tid); // f14
        }
        FdAction::Notify(r) // f15
    }

    fn monitored(&self) -> NodeSet {
        self.monitored
    }

    fn els_sent(&self) -> u64 {
        self.els_sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_controller::{Controller, JournalEntry, TimerWheel};

    struct Harness {
        ctl: Controller,
        timers: TimerWheel,
        journal: Vec<JournalEntry>,
        me: NodeId,
        now: BitTime,
    }

    impl Harness {
        fn new(me: u8) -> Self {
            Harness {
                ctl: Controller::new(),
                timers: TimerWheel::new(),
                journal: Vec::new(),
                me: NodeId::new(me),
                now: BitTime::ZERO,
            }
        }

        fn ctx<R>(&mut self, f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
            let mut ctx = Ctx::new(
                self.now,
                self.me,
                &mut self.ctl,
                &mut self.timers,
                &mut self.journal,
                false,
            );
            f(&mut ctx)
        }
    }

    fn fd() -> SurveillanceDetector {
        SurveillanceDetector::new(BitTime::new(5_000), BitTime::new(2_500))
    }

    fn node_timer(r: u8) -> DetectorTimer {
        DetectorTimer::Node(NodeId::new(r))
    }

    #[test]
    fn local_timer_uses_th_remote_uses_th_plus_ttd() {
        let mut h = Harness::new(0);
        let mut d = fd();
        h.ctx(|ctx| d.start(ctx, NodeId::new(0)));
        assert_eq!(h.timers.next_deadline(), Some(BitTime::new(5_000)));
        let mut h2 = Harness::new(0);
        let mut d2 = fd();
        h2.ctx(|ctx| d2.start(ctx, NodeId::new(1)));
        assert_eq!(h2.timers.next_deadline(), Some(BitTime::new(7_500)));
    }

    #[test]
    fn activity_restarts_monitored_timer() {
        let mut h = Harness::new(0);
        let mut d = fd();
        h.ctx(|ctx| d.start(ctx, NodeId::new(1)));
        h.now = BitTime::new(4_000);
        h.ctx(|ctx| d.on_activity(ctx, NodeId::new(1)));
        // Restarted at t=4000: new deadline 11_500, old one cancelled.
        assert_eq!(h.timers.next_deadline(), Some(BitTime::new(11_500)));
        assert_eq!(h.timers.len(), 1);
    }

    #[test]
    fn activity_of_unmonitored_node_is_ignored() {
        let mut h = Harness::new(0);
        let mut d = fd();
        h.ctx(|ctx| d.on_activity(ctx, NodeId::new(9)));
        assert!(h.timers.is_empty());
        assert_eq!(d.monitored(), NodeSet::EMPTY);
    }

    #[test]
    fn local_expiry_broadcasts_els() {
        let mut h = Harness::new(3);
        let mut d = fd();
        h.ctx(|ctx| d.start(ctx, NodeId::new(3)));
        h.now = BitTime::new(5_000);
        let action = h.ctx(|ctx| d.on_timer(ctx, node_timer(3)));
        assert_eq!(action, None);
        assert_eq!(d.els_sent(), 1);
        // An ELS remote frame is queued.
        let head = h.ctl.head().unwrap();
        assert!(head.is_remote());
        assert_eq!(
            Mid::from_can_id(head.id()).unwrap(),
            els_mid(NodeId::new(3))
        );
    }

    #[test]
    fn own_els_reception_restarts_local_timer() {
        // The elegant loop of Fig. 8: the node's own ELS arrives back
        // (own transmissions included) and f03 restarts the timer.
        let mut h = Harness::new(3);
        let mut d = fd();
        h.ctx(|ctx| d.start(ctx, NodeId::new(3)));
        h.now = BitTime::new(5_000);
        let fired = h.timers.pop_due(h.now).expect("local timer due");
        assert_eq!(
            fired.tag,
            crate::tags::TimerOwner::Surveillance(NodeId::new(3)).encode()
        );
        h.ctx(|ctx| d.on_timer(ctx, node_timer(3)));
        assert!(h.timers.is_empty(), "no timer while ELS in flight");
        h.now = BitTime::new(5_080);
        h.ctx(|ctx| d.on_activity(ctx, NodeId::new(3)));
        assert_eq!(h.timers.next_deadline(), Some(BitTime::new(10_080)));
    }

    #[test]
    fn remote_expiry_suspects() {
        let mut h = Harness::new(0);
        let mut d = fd();
        h.ctx(|ctx| d.start(ctx, NodeId::new(2)));
        h.now = BitTime::new(7_500);
        let action = h.ctx(|ctx| d.on_timer(ctx, node_timer(2)));
        assert_eq!(action, Some(FdAction::Suspect(NodeId::new(2))));
        // No ELS issued for remote nodes.
        assert_eq!(h.ctl.queue_len(), 0);
    }

    #[test]
    fn period_tick_is_inert() {
        // The paper detector is purely event-driven: a stray period
        // tick (e.g. after a backend swap) must be a no-op.
        let mut h = Harness::new(0);
        let mut d = fd();
        h.ctx(|ctx| d.start(ctx, NodeId::new(2)));
        let action = h.ctx(|ctx| d.on_timer(ctx, DetectorTimer::Period));
        assert_eq!(action, None);
        assert_eq!(h.timers.len(), 1);
    }

    #[test]
    fn stop_cancels_and_squelches_stale_expiry() {
        let mut h = Harness::new(0);
        let mut d = fd();
        h.ctx(|ctx| d.start(ctx, NodeId::new(2)));
        h.ctx(|ctx| d.stop(ctx, NodeId::new(2)));
        assert!(h.timers.is_empty());
        // A stale expiry (raced with STOP) is ignored.
        let action = h.ctx(|ctx| d.on_timer(ctx, node_timer(2)));
        assert_eq!(action, None);
    }

    #[test]
    fn fda_notification_cancels_and_notifies() {
        let mut h = Harness::new(0);
        let mut d = fd();
        h.ctx(|ctx| d.start(ctx, NodeId::new(2)));
        let action = h.ctx(|ctx| d.on_fda_nty(ctx, NodeId::new(2)));
        assert_eq!(action, FdAction::Notify(NodeId::new(2)));
        assert!(h.timers.is_empty());
        assert!(!d.monitored().contains(NodeId::new(2)));
    }

    #[test]
    fn stop_all_clears_everything() {
        let mut h = Harness::new(0);
        let mut d = fd();
        h.ctx(|ctx| {
            d.start(ctx, NodeId::new(0));
            d.start(ctx, NodeId::new(1));
            d.start(ctx, NodeId::new(2));
        });
        assert_eq!(h.timers.len(), 3);
        h.ctx(|ctx| d.stop_all(ctx));
        assert!(h.timers.is_empty());
        assert_eq!(d.monitored(), NodeSet::EMPTY);
    }

    #[test]
    fn restart_replaces_rather_than_accumulates_timers() {
        let mut h = Harness::new(0);
        let mut d = fd();
        h.ctx(|ctx| d.start(ctx, NodeId::new(1)));
        for step in 1..=5u64 {
            h.now = BitTime::new(step * 1_000);
            h.ctx(|ctx| d.on_activity(ctx, NodeId::new(1)));
        }
        assert_eq!(h.timers.len(), 1, "exactly one live timer per node");
    }

    #[test]
    fn detector_kind_keys_round_trip() {
        for kind in DetectorKind::ALL {
            assert_eq!(DetectorKind::from_key(kind.key()), Some(kind));
            assert_eq!(kind.to_string(), kind.key());
        }
        assert_eq!(DetectorKind::from_key("gossip"), None);
        assert_eq!(DetectorKind::default(), DetectorKind::Surveillance);
    }

    #[test]
    fn every_kind_builds_a_backend() {
        let th = BitTime::new(5_000);
        let ttd = BitTime::new(2_500);
        for kind in DetectorKind::ALL {
            let d = kind.build(th, ttd);
            assert_eq!(d.monitored(), NodeSet::EMPTY);
            assert_eq!(d.control_frames(), 0);
        }
        // The baseline backend needs no extra detection margin; the
        // alternatives do.
        assert_eq!(
            DetectorKind::Surveillance.extra_detection_margin(th, ttd),
            BitTime::ZERO
        );
        for kind in [DetectorKind::Swim, DetectorKind::AddPhi] {
            assert!(kind.extra_detection_margin(th, ttd) > BitTime::ZERO);
        }
    }
}
