//! The site membership protocol (paper Fig. 9).
//!
//! The protocol maintains `Vs`, the *site membership view*, consistent
//! at all correct nodes:
//!
//! * join/leave requests travel as remote frames and accumulate in
//!   `Vj` / `Vl` during a membership cycle;
//! * when the cycle timer (`Tm`) expires — or an RHA execution is
//!   triggered remotely — pending join/leave requests are settled by
//!   one RHA run; an idle cycle **skips RHA entirely** to save
//!   bandwidth (line s24);
//! * node crash failures arrive from the companion failure detection
//!   service (`fd-can.nty`), are accumulated in `Fs` and notified
//!   *immediately* (line s15); the view is purged at the next
//!   view-processing point;
//! * a non-integrated node whose join-wait timer expires with no
//!   full member answering bootstraps the view from `Vj` (line s19).
//!
//! ## Reconstruction notes (garbled pseudo-code in the source scan)
//!
//! Two details of Fig. 9 are illegible in the available scan and are
//! reconstructed here from the surrounding prose, preserving the
//! documented intent:
//!
//! 1. **Two-cycle join straggler removal** (footnote 10): "an
//!    auxiliary set `V'j` allows to remove from `Vj`, within a period
//!    of two membership cycles, any node that on account of an
//!    inconsistent failure, does not succeed to be included in `Vs`."
//!    We implement: after each view settlement, a join request that
//!    did not make it into the view survives exactly one further
//!    settlement before being dropped.
//! 2. **Failed-join retry**: a joining node excluded from the agreed
//!    view re-issues its JOIN request (configurable,
//!    `rejoin_on_failed_join`).

use crate::obs::{EventSink, ObsTimer, ProtocolEvent};
use crate::rha::SharedSets;
use crate::tags::TimerOwner;
use can_controller::{Ctx, TimerId};
use can_types::{BitTime, Mid, MsgType, NodeId, NodeSet};

/// Actions the membership protocol hands back to the enclosing stack
/// for routing to the companion services.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshAction {
    /// `fd-can.req(START, r)`: begin surveillance of a node.
    StartFd(NodeId),
    /// `fd-can.req(STOP, r)`: end surveillance of a node.
    StopFd(NodeId),
    /// `rha-can.req()`: settle pending join/leaves with an RHA run.
    InvokeRha,
    /// `msh-can.nty`: membership change notification to upper layers.
    Notify {
        /// The current set of active sites.
        view: NodeSet,
        /// The set of failed nodes reported with this change.
        failed: NodeSet,
    },
    /// The local node's leave completed: it is out of the service
    /// (Fig. 9, lines a13–a15).
    LeftService,
    /// The local node was declared failed by the agreement while still
    /// running (it was inaccessible longer than the detection bound):
    /// it must stop participating — fail-silence by expulsion.
    Expelled,
}

/// A membership change as recorded for upper layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipEvent {
    /// When the notification was delivered.
    pub time: BitTime,
    /// The set of active sites (`Vs` net of reported failures).
    pub view: NodeSet,
    /// The failed nodes reported with this notification (empty for
    /// join/leave changes).
    pub failed: NodeSet,
}

/// The site membership protocol entity of one node.
#[derive(Debug)]
pub struct Membership {
    /// `Tm`: membership cycle period.
    tm: BitTime,
    /// `Tjoin-wait`: maximum join wait delay.
    join_wait: BitTime,
    /// Reconstruction flag: retry JOIN after an inconsistent join
    /// failure.
    rejoin_on_failed_join: bool,
    /// `Vs`: the site membership view.
    vs: NodeSet,
    /// `Vj`: nodes in a joining process.
    vj: NodeSet,
    /// `V'j`: join stragglers carried over one settlement (footnote 10).
    vj_prev: NodeSet,
    /// `Vl`: nodes requesting withdrawal.
    vl: NodeSet,
    /// `Fs`: node crash failures detected this cycle.
    fs: NodeSet,
    /// The shared cycle / join-wait alarm (`tid`).
    tid: Option<TimerId>,
    /// Whether the local node has an outstanding join attempt.
    joining: bool,
    /// Whether the local node has left (or been expelled from) the
    /// service.
    out_of_service: bool,
    /// Completed membership cycles (introspection).
    cycles: u64,
    /// Structured-event sink (disabled by default).
    obs: EventSink,
}

impl Membership {
    /// Creates a membership entity.
    pub fn new(tm: BitTime, join_wait: BitTime, rejoin_on_failed_join: bool) -> Self {
        Membership {
            tm,
            join_wait,
            rejoin_on_failed_join,
            vs: NodeSet::EMPTY,
            vj: NodeSet::EMPTY,
            vj_prev: NodeSet::EMPTY,
            vl: NodeSet::EMPTY,
            fs: NodeSet::EMPTY,
            tid: None,
            joining: false,
            out_of_service: false,
            cycles: 0,
            obs: EventSink::disabled(),
        }
    }

    /// Installs the structured-event sink (see [`crate::obs`]).
    pub fn set_sink(&mut self, sink: EventSink) {
        self.obs = sink;
    }

    /// The current site membership view `Vs`.
    pub fn view(&self) -> NodeSet {
        self.vs
    }

    /// Whether the local node is a full member.
    pub fn is_member(&self, me: NodeId) -> bool {
        self.vs.contains(me)
    }

    /// Whether the local node has left / been expelled.
    pub fn is_out_of_service(&self) -> bool {
        self.out_of_service
    }

    /// Completed membership cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Snapshot of the shared variables for an RHA invocation.
    pub fn shared_sets(&self) -> SharedSets {
        SharedSets {
            vs: self.vs,
            vj: self.vj,
            vl: self.vl,
        }
    }

    /// `msh-can.req(JOIN)` (lines s00–s03): request integration of the
    /// local node.
    pub fn request_join(&mut self, ctx: &mut Ctx<'_>) {
        if self.vs.contains(ctx.me()) || self.out_of_service {
            return;
        }
        self.joining = true;
        if self.tid.is_none() {
            self.tid = Some(ctx.start_alarm(
                self.join_wait, // s01: max join wait delay
                TimerOwner::MembershipCycle.encode(),
            ));
            self.obs.emit(
                ctx.now(),
                ctx.me(),
                ProtocolEvent::TimerArmed {
                    timer: ObsTimer::MembershipCycle,
                    deadline: ctx.now() + self.join_wait,
                },
            );
        }
        ctx.can_rtr_req(Mid::new(MsgType::Join, 0, ctx.me())); // s02
        self.obs.emit(ctx.now(), ctx.me(), ProtocolEvent::JoinRequested);
        ctx.journal("MSH: join requested");
    }

    /// `msh-can.req(LEAVE)` (lines s07–s09): request withdrawal of the
    /// local node.
    pub fn request_leave(&mut self, ctx: &mut Ctx<'_>) {
        if !self.vs.contains(ctx.me()) {
            return; // s07 guard: only members leave
        }
        ctx.can_rtr_req(Mid::new(MsgType::Leave, 0, ctx.me())); // s08
        self.obs.emit(ctx.now(), ctx.me(), ProtocolEvent::LeaveRequested);
        ctx.journal("MSH: leave requested");
    }

    /// Arrival of a JOIN remote frame (lines s04–s06).
    pub fn on_join_ind(&mut self, r: NodeId) {
        self.vj.insert(r);
    }

    /// Arrival of a LEAVE remote frame (lines s10–s12).
    pub fn on_leave_ind(&mut self, r: NodeId) {
        self.vl.insert(r);
    }

    /// `fd-can.nty(r)`: a node crash failure was agreed (lines
    /// s13–s16). The change is notified immediately.
    pub fn on_fd_nty(&mut self, ctx: &mut Ctx<'_>, r: NodeId) -> Vec<MshAction> {
        if self.out_of_service {
            return Vec::new();
        }
        self.fs.insert(r); // s14
        ctx.journal(format_args!("MSH: failure of {r} notified"));
        self.chg_nty(ctx, self.vs - self.fs, NodeSet::singleton(r)) // s15
    }

    /// Cycle boundary: the shared alarm expired (`expired = true`) or
    /// an RHA execution started (`rha-can.nty(INIT)`, `expired =
    /// false`) — lines s17–s27.
    pub fn on_cycle_boundary(&mut self, ctx: &mut Ctx<'_>, expired: bool) -> Vec<MshAction> {
        if self.out_of_service {
            return Vec::new();
        }
        let me = ctx.me();
        if expired && !self.vs.contains(me) {
            // s18–s19: no full member answered within the join wait —
            // bootstrap the view from the joining set.
            self.vs = self.vj;
            self.obs
                .emit(ctx.now(), me, ProtocolEvent::ViewBootstrapped { view: self.vs });
            ctx.journal(format_args!("MSH: bootstrap view {}", self.vs));
        }
        // s21: restart the cycle timer.
        if let Some(old) = self.tid.take() {
            ctx.cancel_alarm(old);
        }
        self.tid = Some(ctx.start_alarm(self.tm, TimerOwner::MembershipCycle.encode()));
        self.obs.emit(
            ctx.now(),
            me,
            ProtocolEvent::TimerArmed {
                timer: ObsTimer::MembershipCycle,
                deadline: ctx.now() + self.tm,
            },
        );
        self.cycles += 1;

        let idle = self.vj.is_empty() && self.vl.is_empty();
        self.obs.emit(
            ctx.now(),
            me,
            ProtocolEvent::CycleStarted {
                index: self.cycles,
                idle,
            },
        );
        let mut actions = Vec::new();
        if !idle {
            actions.push(MshAction::InvokeRha); // s23
        } else {
            self.view_proc(ctx, self.vs); // s25: idle cycle — skip RHA
        }
        self.maybe_rejoin(ctx, &mut actions);
        actions
    }

    /// `rha-can.nty(END, V_RHV)` (lines s28–s34).
    pub fn on_rha_end(&mut self, ctx: &mut Ctx<'_>, v_rhv: NodeSet) -> Vec<MshAction> {
        if self.out_of_service {
            return Vec::new();
        }
        let me = ctx.me();
        let was_member = self.vs.contains(me);
        let vj_snapshot = self.vj;
        let vl_snapshot = self.vl;

        self.view_proc(ctx, v_rhv); // s29

        let mut actions = Vec::new();
        // s30–s32: notify if the settlement changed the composition.
        if !(vj_snapshot & self.vs).is_empty() || !(vl_snapshot - self.vs).is_empty() {
            actions.extend(self.chg_nty(ctx, self.vs, NodeSet::EMPTY));
        }
        if self.out_of_service {
            // The local node left with this settlement: nothing more
            // to manage.
            return actions;
        }

        // s33 / msh-data-proc (lines a03–a09).
        let became_member = !was_member && self.vs.contains(me);
        if became_member {
            self.joining = false;
            // A freshly integrated node starts surveillance of every
            // member, itself included (it has no incremental history).
            for s in self.vs.iter() {
                actions.push(MshAction::StartFd(s));
            }
        } else {
            for s in (vj_snapshot & self.vs).iter() {
                actions.push(MshAction::StartFd(s)); // a04–a05
            }
        }
        // Footnote-10 straggler removal: joins settled into the view
        // leave Vj; unsuccessful joins survive one more settlement.
        let stragglers = vj_snapshot - self.vs;
        self.vj = stragglers - self.vj_prev;
        self.vj_prev = stragglers;

        for s in (vl_snapshot - self.vs).iter() {
            actions.push(MshAction::StopFd(s)); // a07–a08
        }
        self.vl &= self.vs; // a09

        self.maybe_rejoin(ctx, &mut actions);
        ctx.journal(format_args!("MSH: view settled to {}", self.vs));
        actions
    }

    /// `msh-view-proc` (lines a00–a02): commit a vector as the view,
    /// net of the failures detected meanwhile.
    fn view_proc(&mut self, ctx: &mut Ctx<'_>, vw: NodeSet) {
        let next = vw - self.fs; // a01
        if next != self.vs {
            self.obs
                .emit(ctx.now(), ctx.me(), ProtocolEvent::ViewInstalled { view: next });
        }
        self.vs = next;
        self.fs = NodeSet::EMPTY;
    }

    /// `msh-chg-nty` (lines a10–a18).
    fn chg_nty(&mut self, ctx: &mut Ctx<'_>, view: NodeSet, failed: NodeSet) -> Vec<MshAction> {
        let me = ctx.me();
        if failed.contains(me) {
            // The agreement expelled us (we were silent beyond the
            // detection bound): stop participating.
            if let Some(tid) = self.tid.take() {
                ctx.cancel_alarm(tid);
            }
            self.out_of_service = true;
            ctx.journal("MSH: expelled from the membership");
            vec![MshAction::Expelled]
        } else if view.contains(me) || self.vs.contains(me) {
            // a11–a12: full member — deliver the change upstairs.
            vec![MshAction::Notify { view, failed }]
        } else if self.vl.contains(me) {
            // a13–a15: our leave completed.
            if let Some(tid) = self.tid.take() {
                ctx.cancel_alarm(tid);
            }
            self.out_of_service = true;
            self.vl.remove(me);
            ctx.journal("MSH: leave completed");
            vec![
                MshAction::Notify {
                    view,
                    failed: NodeSet::singleton(me),
                },
                MshAction::LeftService,
            ]
        } else {
            Vec::new()
        }
    }

    /// Reconstruction: retry a join that was not settled into the view.
    fn maybe_rejoin(&mut self, ctx: &mut Ctx<'_>, actions: &mut Vec<MshAction>) {
        let me = ctx.me();
        if self.rejoin_on_failed_join
            && self.joining
            && !self.vs.contains(me)
            && !self.vj.contains(me)
        {
            ctx.can_rtr_req(Mid::new(MsgType::Join, 0, me));
            ctx.journal("MSH: re-issuing join request");
            let _ = actions; // no companion actions needed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use can_controller::{Controller, JournalEntry, TimerWheel};

    struct Harness {
        ctl: Controller,
        timers: TimerWheel,
        journal: Vec<JournalEntry>,
        me: NodeId,
        now: BitTime,
    }

    impl Harness {
        fn new(me: u8) -> Self {
            Harness {
                ctl: Controller::new(),
                timers: TimerWheel::new(),
                journal: Vec::new(),
                me: NodeId::new(me),
                now: BitTime::ZERO,
            }
        }

        fn ctx<R>(&mut self, f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
            let mut ctx = Ctx::new(
                self.now,
                self.me,
                &mut self.ctl,
                &mut self.timers,
                &mut self.journal,
                false,
            );
            f(&mut ctx)
        }
    }

    fn msh() -> Membership {
        Membership::new(BitTime::new(30_000), BitTime::new(60_000), true)
    }

    fn bits(b: u64) -> NodeSet {
        NodeSet::from_bits(b)
    }

    #[test]
    fn join_request_arms_wait_timer_and_broadcasts() {
        let mut h = Harness::new(2);
        let mut m = msh();
        h.ctx(|ctx| m.request_join(ctx));
        assert!(m.joining);
        assert_eq!(h.timers.next_deadline(), Some(BitTime::new(60_000)));
        let head = h.ctl.head().unwrap();
        assert_eq!(
            Mid::from_can_id(head.id()).unwrap().msg_type(),
            MsgType::Join
        );
    }

    #[test]
    fn member_does_not_rejoin() {
        let mut h = Harness::new(2);
        let mut m = msh();
        m.vs = bits(0b0100);
        h.ctx(|ctx| m.request_join(ctx));
        assert!(!m.joining);
        assert_eq!(h.ctl.queue_len(), 0);
    }

    #[test]
    fn leave_requires_membership() {
        let mut h = Harness::new(2);
        let mut m = msh();
        h.ctx(|ctx| m.request_leave(ctx));
        assert_eq!(h.ctl.queue_len(), 0);
        m.vs = bits(0b0100);
        h.ctx(|ctx| m.request_leave(ctx));
        assert_eq!(h.ctl.queue_len(), 1);
    }

    #[test]
    fn failure_notification_is_immediate() {
        let mut h = Harness::new(0);
        let mut m = msh();
        m.vs = bits(0b0111);
        let actions = h.ctx(|ctx| m.on_fd_nty(ctx, NodeId::new(2)));
        assert_eq!(
            actions,
            vec![MshAction::Notify {
                view: bits(0b0011),
                failed: bits(0b0100),
            }]
        );
        // Fs purges the view at the next processing point.
        let actions = h.ctx(|ctx| m.on_cycle_boundary(ctx, true));
        assert!(actions.is_empty(), "idle cycle skips RHA");
        assert_eq!(m.view(), bits(0b0011));
    }

    #[test]
    fn idle_cycle_skips_rha_pending_requests_invoke_it() {
        let mut h = Harness::new(0);
        let mut m = msh();
        m.vs = bits(0b0011);
        let idle = h.ctx(|ctx| m.on_cycle_boundary(ctx, true));
        assert!(idle.is_empty());
        m.on_join_ind(NodeId::new(5));
        let busy = h.ctx(|ctx| m.on_cycle_boundary(ctx, true));
        assert_eq!(busy, vec![MshAction::InvokeRha]);
    }

    #[test]
    fn bootstrap_view_from_joiners() {
        let mut h = Harness::new(0);
        let mut m = msh();
        h.ctx(|ctx| m.request_join(ctx));
        m.on_join_ind(NodeId::new(0));
        m.on_join_ind(NodeId::new(1));
        // Join-wait expired with no full member around: s18–s19.
        let actions = h.ctx(|ctx| m.on_cycle_boundary(ctx, true));
        assert_eq!(m.view(), bits(0b0011));
        assert_eq!(actions, vec![MshAction::InvokeRha]);
    }

    #[test]
    fn rha_end_settles_join_and_starts_fd() {
        let mut h = Harness::new(0);
        let mut m = msh();
        m.vs = bits(0b0011);
        m.on_join_ind(NodeId::new(2));
        let actions = h.ctx(|ctx| m.on_rha_end(ctx, bits(0b0111)));
        assert_eq!(m.view(), bits(0b0111));
        assert!(actions.contains(&MshAction::Notify {
            view: bits(0b0111),
            failed: NodeSet::EMPTY,
        }));
        assert!(actions.contains(&MshAction::StartFd(NodeId::new(2))));
        assert!(m.vj.is_empty(), "settled join leaves Vj");
    }

    #[test]
    fn newly_integrated_node_starts_fd_for_every_member() {
        let mut h = Harness::new(4);
        let mut m = msh();
        h.ctx(|ctx| m.request_join(ctx));
        m.on_join_ind(NodeId::new(4));
        let actions = h.ctx(|ctx| m.on_rha_end(ctx, bits(0b1_0111)));
        let fd_starts: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                MshAction::StartFd(r) => Some(r.as_u8()),
                _ => None,
            })
            .collect();
        assert_eq!(fd_starts, vec![0, 1, 2, 4]);
        assert!(!m.joining, "join completed");
    }

    #[test]
    fn rha_end_settles_leave_and_stops_fd() {
        let mut h = Harness::new(0);
        let mut m = msh();
        m.vs = bits(0b0111);
        m.on_leave_ind(NodeId::new(2));
        let actions = h.ctx(|ctx| m.on_rha_end(ctx, bits(0b0011)));
        assert_eq!(m.view(), bits(0b0011));
        assert!(actions.contains(&MshAction::StopFd(NodeId::new(2))));
        assert!(m.vl.is_empty());
    }

    #[test]
    fn leaving_node_gets_left_service() {
        let mut h = Harness::new(2);
        let mut m = msh();
        m.vs = bits(0b0111);
        m.on_leave_ind(NodeId::new(2)); // own leave echoed back
        let actions = h.ctx(|ctx| m.on_rha_end(ctx, bits(0b0011)));
        assert!(actions.contains(&MshAction::LeftService));
        assert!(m.is_out_of_service());
        // Subsequent events are ignored.
        let after = h.ctx(|ctx| m.on_cycle_boundary(ctx, true));
        assert!(after.is_empty());
    }

    #[test]
    fn expulsion_when_declared_failed() {
        let mut h = Harness::new(2);
        let mut m = msh();
        m.vs = bits(0b0111);
        let actions = h.ctx(|ctx| m.on_fd_nty(ctx, NodeId::new(2)));
        assert!(actions.contains(&MshAction::Expelled));
        assert!(m.is_out_of_service());
    }

    #[test]
    fn straggler_join_dropped_after_two_settlements() {
        let mut h = Harness::new(0);
        let mut m = msh();
        m.vs = bits(0b0011);
        m.on_join_ind(NodeId::new(5));
        // First settlement excludes node 5 (inconsistent join).
        h.ctx(|ctx| m.on_rha_end(ctx, bits(0b0011)));
        assert!(m.vj.contains(NodeId::new(5)), "survives one settlement");
        // Second settlement still excludes it: dropped.
        h.ctx(|ctx| m.on_rha_end(ctx, bits(0b0011)));
        assert!(!m.vj.contains(NodeId::new(5)), "dropped after two");
    }

    #[test]
    fn failed_join_is_retried() {
        let mut h = Harness::new(3);
        let mut m = msh();
        h.ctx(|ctx| m.request_join(ctx));
        assert_eq!(h.ctl.queue_len(), 1);
        // The join was consumed (Vj cleared by a settlement that did
        // not include us) — the stack retries.
        h.ctx(|ctx| m.on_rha_end(ctx, bits(0b0011)));
        assert_eq!(h.ctl.queue_len(), 2, "JOIN re-issued");
        assert!(m.joining);
    }

    #[test]
    fn cycle_counter_advances() {
        let mut h = Harness::new(0);
        let mut m = msh();
        m.vs = bits(0b1);
        for _ in 0..3 {
            h.ctx(|ctx| m.on_cycle_boundary(ctx, true));
        }
        assert_eq!(m.cycles(), 3);
    }
}
