//! Differential property test pinning [`canely::SurveillanceDetector`]
//! — driven through the [`canely::FailureDetector`] trait seam — to
//! the pre-refactor `FailureDetector` implementation, copied below
//! verbatim (only the import paths and the struct name changed). Any
//! behavioural drift the trait extraction might have introduced shows
//! up as a divergence on some randomized schedule of START/STOP,
//! activity, timer-expiry and FDA-notification events.
//!
//! Pattern of `can-bus/tests/medium_props.rs`: a reference copy of
//! the seed implementation judged against the current code over
//! proptest-generated inputs.

use can_controller::{Controller, Ctx, JournalEntry, TimerId, TimerWheel};
use can_types::{BitTime, Mid, MsgType, NodeId, NodeSet};
use canely::obs::{EventSink, ObsTimer, ProtocolEvent};
use canely::tags::TimerOwner;
use canely::{DetectorTimer, FailureDetector as _, FdAction, SurveillanceDetector};
use proptest::prelude::*;
use std::collections::HashMap;

/// The seed-tree failure detector, verbatim (docs and tests elided;
/// `crate::` paths rewritten for the external-test context).
#[derive(Debug)]
struct LegacyFailureDetector {
    th: BitTime,
    ttd: BitTime,
    timers: HashMap<NodeId, TimerId>,
    monitored: NodeSet,
    els_sent: u64,
    obs: EventSink,
}

impl LegacyFailureDetector {
    fn new(th: BitTime, ttd: BitTime) -> Self {
        LegacyFailureDetector {
            th,
            ttd,
            timers: HashMap::new(),
            monitored: NodeSet::EMPTY,
            els_sent: 0,
            obs: EventSink::disabled(),
        }
    }

    fn els_mid(r: NodeId) -> Mid {
        Mid::new(MsgType::Els, 0, r)
    }

    fn monitored(&self) -> NodeSet {
        self.monitored
    }

    fn els_sent(&self) -> u64 {
        self.els_sent
    }

    fn start(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        self.monitored.insert(r);
        self.arm(ctx, r); // f01
    }

    fn stop(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        self.monitored.remove(r);
        if let Some(tid) = self.timers.remove(&r) {
            ctx.cancel_alarm(tid); // f18
        }
    }

    fn arm(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        if let Some(old) = self.timers.remove(&r) {
            ctx.cancel_alarm(old);
        }
        let duration = if r == ctx.me() {
            self.th // a02
        } else {
            self.th + self.ttd + BitTime::new(u64::from(ctx.me().as_u8()) * 512)
        };
        let tid = ctx.start_alarm(duration, TimerOwner::Surveillance(r).encode());
        self.obs.emit(
            ctx.now(),
            ctx.me(),
            ProtocolEvent::TimerArmed {
                timer: ObsTimer::Surveillance(r),
                deadline: ctx.now() + duration,
            },
        );
        self.timers.insert(r, tid);
    }

    fn on_activity(&mut self, ctx: &mut Ctx<'_>, r: NodeId) {
        if self.monitored.contains(r) {
            self.arm(ctx, r); // f04
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, r: NodeId) -> Option<FdAction> {
        if !self.monitored.contains(r) {
            return None; // stale expiry after STOP
        }
        self.timers.remove(&r);
        if r == ctx.me() {
            ctx.can_rtr_req(Self::els_mid(r)); // f08
            self.els_sent += 1;
            self.obs.emit(ctx.now(), ctx.me(), ProtocolEvent::LifeSignSent);
            ctx.journal("FD: broadcasting explicit life-sign");
            None
        } else {
            self.obs
                .emit(ctx.now(), ctx.me(), ProtocolEvent::SuspectRaised { suspect: r });
            ctx.journal(format_args!("FD: node {r} silent — suspecting"));
            Some(FdAction::Suspect(r)) // f10
        }
    }

    fn on_fda_nty(&mut self, ctx: &mut Ctx<'_>, r: NodeId) -> FdAction {
        self.monitored.remove(r);
        if let Some(tid) = self.timers.remove(&r) {
            ctx.cancel_alarm(tid); // f14
        }
        FdAction::Notify(r) // f15
    }
}

/// One node's worth of simulator plumbing (controller + timer wheel),
/// duplicated so the legacy and the refactored detector each drive
/// their own world from the identical schedule.
struct World {
    ctl: Controller,
    timers: TimerWheel,
    journal: Vec<JournalEntry>,
    me: NodeId,
    now: BitTime,
}

impl World {
    fn new(me: u8) -> Self {
        World {
            ctl: Controller::new(),
            timers: TimerWheel::new(),
            journal: Vec::new(),
            me: NodeId::new(me),
            now: BitTime::ZERO,
        }
    }

    fn ctx<R>(&mut self, f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
        let mut ctx = Ctx::new(
            self.now,
            self.me,
            &mut self.ctl,
            &mut self.timers,
            &mut self.journal,
            false,
        );
        f(&mut ctx)
    }
}

/// A randomized protocol stimulus. Selector ranges instead of
/// `prop_oneof!` (the vendored proptest has no such macro — same
/// style as `medium_props.rs`).
#[derive(Debug, Clone)]
struct Step {
    /// 0 = START, 1 = STOP, 2 = activity, 3 = fda-nty, 4.. = fire the
    /// next due timer (over-weighted so schedules actually expire).
    selector: u8,
    node: u8,
    /// Time advance before the step, in bit-times.
    delta: u16,
}

fn arb_step() -> impl Strategy<Value = Step> {
    (0u8..8, 0u8..4, 0u16..6_000).prop_map(|(selector, node, delta)| Step {
        selector,
        node,
        delta,
    })
}

proptest! {
    /// The refactored detector behind the trait is action-for-action,
    /// timer-for-timer and frame-for-frame identical to the seed
    /// implementation on arbitrary fault schedules.
    #[test]
    fn surveillance_detector_matches_the_seed_implementation(
        me in 0u8..4,
        steps in prop::collection::vec(arb_step(), 1..48),
    ) {
        let th = BitTime::new(5_000);
        let ttd = BitTime::new(2_500);
        let mut old_world = World::new(me);
        let mut new_world = World::new(me);
        let mut old = LegacyFailureDetector::new(th, ttd);
        let mut new = SurveillanceDetector::new(th, ttd);

        for step in &steps {
            let now = old_world.now + BitTime::new(u64::from(step.delta));
            old_world.now = now;
            new_world.now = now;
            let r = NodeId::new(step.node);
            match step.selector {
                0 => {
                    old_world.ctx(|ctx| old.start(ctx, r));
                    new_world.ctx(|ctx| new.start(ctx, r));
                }
                1 => {
                    old_world.ctx(|ctx| old.stop(ctx, r));
                    new_world.ctx(|ctx| new.stop(ctx, r));
                }
                2 => {
                    old_world.ctx(|ctx| old.on_activity(ctx, r));
                    new_world.ctx(|ctx| new.on_activity(ctx, r));
                }
                3 => {
                    let a = old_world.ctx(|ctx| old.on_fda_nty(ctx, r));
                    let b = new_world.ctx(|ctx| new.on_fda_nty(ctx, r));
                    prop_assert_eq!(a, b);
                }
                _ => {
                    // Fire the next due timer, exactly as the simulator
                    // would: advance to the deadline, pop, dispatch.
                    let Some(deadline) = old_world.timers.next_deadline() else {
                        prop_assert_eq!(new_world.timers.next_deadline(), None);
                        continue;
                    };
                    prop_assert_eq!(new_world.timers.next_deadline(), Some(deadline));
                    old_world.now = deadline;
                    new_world.now = deadline;
                    let fired_old = old_world.timers.pop_due(deadline).expect("due");
                    let fired_new = new_world.timers.pop_due(deadline).expect("due");
                    prop_assert_eq!(fired_old.tag, fired_new.tag);
                    let Some(TimerOwner::Surveillance(victim)) =
                        TimerOwner::decode(fired_old.tag)
                    else {
                        panic!("surveillance detectors own only surveillance timers");
                    };
                    let a = old_world.ctx(|ctx| old.on_timer(ctx, victim));
                    let b =
                        new_world.ctx(|ctx| new.on_timer(ctx, DetectorTimer::Node(victim)));
                    prop_assert_eq!(a, b);
                }
            }
            // Lock-step observable state after every event.
            prop_assert_eq!(old.monitored(), new.monitored());
            prop_assert_eq!(old.els_sent(), new.els_sent());
            prop_assert_eq!(new.els_sent(), new.control_frames());
            prop_assert_eq!(old_world.timers.len(), new_world.timers.len());
            prop_assert_eq!(
                old_world.timers.next_deadline(),
                new_world.timers.next_deadline()
            );
            prop_assert_eq!(old_world.ctl.queue_len(), new_world.ctl.queue_len());
            prop_assert_eq!(
                old_world.ctl.head().map(can_types::Frame::id),
                new_world.ctl.head().map(can_types::Frame::id)
            );
        }
    }
}
