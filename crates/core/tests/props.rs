//! Property-based tests of the protocol state machines, driven
//! directly (no simulator): randomized input sequences must preserve
//! the per-entity invariants regardless of ordering.

use can_controller::{Controller, Ctx, JournalEntry, TimerWheel};
use can_types::{BitTime, NodeId, NodeSet, Payload};
use canely::fda::Fda;
use canely::membership::Membership;
use canely::rha::{Rha, RhaNotification, SharedSets};
use proptest::prelude::*;

struct Harness {
    ctl: Controller,
    timers: TimerWheel,
    journal: Vec<JournalEntry>,
    me: NodeId,
}

impl Harness {
    fn new(me: u8) -> Self {
        Harness {
            ctl: Controller::new(),
            timers: TimerWheel::new(),
            journal: Vec::new(),
            me: NodeId::new(me),
        }
    }
    fn ctx<R>(&mut self, f: impl FnOnce(&mut Ctx<'_>) -> R) -> R {
        let mut ctx = Ctx::new(
            BitTime::ZERO,
            self.me,
            &mut self.ctl,
            &mut self.timers,
            &mut self.journal,
            false,
        );
        f(&mut ctx)
    }
}

fn arb_node() -> impl Strategy<Value = NodeId> {
    (0u8..64).prop_map(NodeId::new)
}

fn arb_set() -> impl Strategy<Value = NodeSet> {
    any::<u64>().prop_map(NodeSet::from_bits)
}

proptest! {
    /// FDA: any interleaving of invocations and frame arrivals
    /// delivers at most one notification per failed node and issues at
    /// most one transmit request per failed node.
    #[test]
    fn fda_delivers_once_requests_once(
        ops in prop::collection::vec((any::<bool>(), arb_node()), 1..60),
    ) {
        let mut h = Harness::new(0);
        let mut fda = Fda::new();
        let mut delivered: Vec<NodeId> = Vec::new();
        h.ctx(|ctx| {
            for (is_invoke, node) in &ops {
                if *is_invoke {
                    fda.invoke(ctx, *node);
                } else if let Some(r) = fda.on_rtr_ind(ctx, Fda::failure_sign_mid(*node)) {
                    delivered.push(r);
                }
            }
        });
        // At most one delivery per node.
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), delivered.len(), "duplicate deliveries");
        // Queue holds at most one request per distinct node (requests
        // may already have been consumed in a real run; here nothing
        // drains the queue, so queue length == distinct requests).
        let distinct: std::collections::HashSet<u8> =
            ops.iter().map(|(_, n)| n.as_u8()).collect();
        prop_assert!(h.ctl.queue_len() <= distinct.len());
    }

    /// RHA: an arbitrary stream of RHV signals keeps the local vector
    /// equal to the intersection of the initial proposal with every
    /// received vector (monotone shrinkage, order-independent result).
    #[test]
    fn rha_vector_is_running_intersection(
        vs_bits in any::<u64>(),
        signals in prop::collection::vec((1u8..64, any::<u64>()), 1..30),
    ) {
        let mut h = Harness::new(0);
        let mut rha = Rha::new(BitTime::new(5_000), 2);
        let sets = SharedSets {
            vs: NodeSet::from_bits(vs_bits | 1), // we are a member
            vj: NodeSet::EMPTY,
            vl: NodeSet::EMPTY,
        };
        h.ctx(|ctx| {
            rha.request(ctx, sets);
        });
        let mut expected = sets.vs;
        for (from, bits) in &signals {
            let v = NodeSet::from_bits(*bits);
            let mid = Rha::rhv_mid(NodeId::new(*from), v);
            let payload = Payload::from_slice(&v.to_bytes()).unwrap();
            h.ctx(|ctx| {
                rha.on_data_ind(ctx, mid, &payload, true, sets);
            });
            expected &= v;
            prop_assert_eq!(rha.current_vector(), expected);
        }
        // Termination returns exactly the intersection and resets.
        let nty = h.ctx(|ctx| rha.on_timeout(ctx));
        prop_assert_eq!(nty, RhaNotification::End(expected));
        prop_assert!(!rha.is_running());
    }

    /// RHA is order-insensitive: permuting the received signals yields
    /// the same final vector.
    #[test]
    fn rha_result_is_permutation_invariant(
        vs_bits in any::<u64>(),
        signals in prop::collection::vec(any::<u64>(), 2..12),
    ) {
        let run = |order: &[u64]| {
            let mut h = Harness::new(0);
            let mut rha = Rha::new(BitTime::new(5_000), 2);
            let sets = SharedSets {
                vs: NodeSet::from_bits(vs_bits | 1),
                vj: NodeSet::EMPTY,
                vl: NodeSet::EMPTY,
            };
            h.ctx(|ctx| {
                rha.request(ctx, sets);
            });
            for (i, bits) in order.iter().enumerate() {
                let v = NodeSet::from_bits(*bits);
                let mid = Rha::rhv_mid(NodeId::new((i % 63 + 1) as u8), v);
                let payload = Payload::from_slice(&v.to_bytes()).unwrap();
                h.ctx(|ctx| {
                    rha.on_data_ind(ctx, mid, &payload, true, sets);
                });
            }
            match h.ctx(|ctx| rha.on_timeout(ctx)) {
                RhaNotification::End(v) => v,
                RhaNotification::Init => unreachable!(),
            }
        };
        let forward = run(&signals);
        let mut reversed = signals.clone();
        reversed.reverse();
        prop_assert_eq!(forward, run(&reversed));
    }

    /// Membership: join/leave indications never corrupt the view
    /// directly (only settlements do), and failure notifications
    /// always shrink it.
    #[test]
    fn membership_view_changes_only_at_settlements(
        initial in arb_set(),
        ops in prop::collection::vec((0u8..3, arb_node()), 1..40),
    ) {
        let mut h = Harness::new(0);
        let mut msh = Membership::new(BitTime::new(30_000), BitTime::new(60_000), true);
        // Install an initial view via a settlement.
        h.ctx(|ctx| {
            msh.on_rha_end(ctx, initial | NodeSet::singleton(NodeId::new(0)));
        });
        let view_after_install = msh.view();
        let mut failed = NodeSet::EMPTY;
        for (op, node) in &ops {
            match op {
                0 => msh.on_join_ind(*node),
                1 => msh.on_leave_ind(*node),
                _ => {
                    h.ctx(|ctx| {
                        msh.on_fd_nty(ctx, *node);
                    });
                    failed.insert(*node);
                }
            }
            // Joins/leaves alone never grow the view; the view only
            // changes through view-processing points.
            prop_assert_eq!(msh.view(), view_after_install);
        }
        // The next settlement applies the accumulated failures.
        let agreed = view_after_install;
        h.ctx(|ctx| {
            msh.on_rha_end(ctx, agreed);
        });
        if !msh.is_out_of_service() {
            prop_assert_eq!(msh.view(), agreed - failed);
        }
    }

    /// Membership: settled views never contain a node reported failed
    /// in the same cycle, regardless of op interleaving.
    #[test]
    fn settlement_excludes_same_cycle_failures(
        agreed in arb_set(),
        victims in prop::collection::vec(arb_node(), 0..5),
    ) {
        let mut h = Harness::new(0);
        let mut msh = Membership::new(BitTime::new(30_000), BitTime::new(60_000), true);
        h.ctx(|ctx| {
            msh.on_rha_end(ctx, NodeSet::ALL);
        });
        let mut failed = NodeSet::EMPTY;
        for v in &victims {
            if v.as_u8() != 0 {
                h.ctx(|ctx| {
                    msh.on_fd_nty(ctx, *v);
                });
                failed.insert(*v);
            }
        }
        h.ctx(|ctx| {
            msh.on_rha_end(ctx, agreed | NodeSet::singleton(NodeId::new(0)));
        });
        prop_assert!((msh.view() & failed).is_empty());
    }
}
