//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate implements the subset of the
//! `proptest 1.x` surface the workspace's property tests use — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, integer/range/tuple/string strategies,
//! `prop::collection::vec`, `prop::sample::{select, Index}`, and the
//! `prop_assert*` macros — on top of a deterministic splitmix64 case
//! generator.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports the generated inputs and
//!   the per-case seed; it does not minimize them.
//! - **Deterministic seeding.** Case seeds derive from the test name
//!   and case index, so every run explores the same inputs — failures
//!   reproduce without a persistence file.
//! - **Default cases = 64** (override with the `PROPTEST_CASES`
//!   environment variable), keeping the heavy whole-system property
//!   tests inside a reasonable CI budget.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests.
///
/// Supports the forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///
///     /// Doc comments and attributes pass through.
///     #[test]
///     fn my_property(x in 0u8..16, ys in prop::collection::vec(any::<u64>(), 1..8)) {
///         prop_assert!(x < 16);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            (<$crate::test_runner::ProptestConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let mut __runner = $crate::test_runner::TestRunner::new(__config);
                __runner.run_named(stringify!($name), |__rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                    let mut __input = ::std::string::String::new();
                    $(
                        let _ = ::std::fmt::Write::write_fmt(
                            &mut __input,
                            format_args!("{} = {:?}; ", stringify!($arg), $arg),
                        );
                    )+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __result.map_err(|e| (__input, e))
                });
            }
        )*
    };
}

/// Assert a condition inside a property test; failure reports the
/// generated inputs instead of panicking on the spot.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    __l, __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                    __l,
                    __r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left != right`\n  both: {:?}",
                    __l
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left != right`\n  both: {:?}\n{}",
                    __l,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod self_tests {
    use crate::prelude::*;

    fn double(x: u8) -> u16 {
        u16::from(x) * 2
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..10, y in 0u64..60_000) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 60_000);
        }

        #[test]
        fn map_applies(x in (0u8..100).prop_map(double)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert!(x < 200);
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<bool>(), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn select_only_yields_options(t in prop::sample::select(vec![1u8, 2, 3, 8, 24])) {
            prop_assert!([1u8, 2, 3, 8, 24].contains(&t));
        }

        #[test]
        fn index_is_in_range(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }

        #[test]
        fn flat_map_composes(
            v in (1usize..4).prop_flat_map(|n| prop::collection::vec(Just(n), n)),
        ) {
            prop_assert_eq!(v.len(), v[0]);
        }

        #[test]
        fn string_patterns_bound_length(s in ".{0,16}") {
            prop_assert!(s.chars().count() <= 16);
        }
    }

    #[test]
    fn deterministic_across_runners() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(crate::arbitrary::any::<u64>(), 1..12);
        let mut a = Vec::new();
        let mut b = Vec::new();
        for out in [&mut a, &mut b] {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(16));
            runner.run_named("determinism_probe", |rng| {
                out.push(strat.generate(rng));
                Ok(())
            });
        }
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "determinism_probe_fail")]
    fn failures_panic_with_context() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(4));
        runner.run_named("determinism_probe_fail", |_rng| {
            Err(("x = 1; ".to_string(), TestCaseError::fail("boom")))
        });
    }
}
