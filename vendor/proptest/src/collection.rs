//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// A `Vec` whose length lies in `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.in_range_i128(self.size.min as i128, self.size.max as i128) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
