//! Sampling strategies (`prop::sample::{select, Index}`).

use crate::arbitrary::Arbitrary;
use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;

/// Uniformly pick one of the given options.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from empty option list");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.pick(self.options.len())].clone()
    }
}

/// An arbitrary index usable against collections of any length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index {
    raw: usize,
}

impl Index {
    /// Project onto a collection of length `len` (must be non-zero).
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index on empty collection");
        self.raw % len
    }
}

/// Function-backed strategy for [`Index`].
#[derive(Debug, Clone, Copy)]
pub struct IndexStrategy;

impl Strategy for IndexStrategy {
    type Value = Index;

    fn generate(&self, rng: &mut TestRng) -> Index {
        Index {
            raw: rng.next_u64() as usize,
        }
    }
}

impl Arbitrary for Index {
    type Strategy = IndexStrategy;

    fn arbitrary() -> IndexStrategy {
        IndexStrategy
    }
}
