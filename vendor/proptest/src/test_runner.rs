//! Deterministic case generation and the test-loop runner.

use std::fmt;

/// Deterministic per-case random source (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform pick in `[0, n)`. `n` must be non-zero.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "pick from empty range");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform value in the inclusive i128 range `[min, max]`.
    pub fn in_range_i128(&mut self, min: i128, max: i128) -> i128 {
        assert!(min <= max, "empty range {min}..={max}");
        let width = (max - min + 1) as u128;
        if width == 0 {
            // Full-width range: any raw draw is uniform.
            return self.next_u64() as i128;
        }
        min + (u128::from(self.next_u64()) % width) as i128
    }
}

/// Runner configuration; mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs were rejected (does not fail the test).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "{msg}"),
            TestCaseError::Reject(msg) => write!(f, "input rejected: {msg}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Drives one property over `config.cases` deterministic cases.
pub struct TestRunner {
    config: ProptestConfig,
}

fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}

impl TestRunner {
    /// A runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }

    /// Run `case` once per configured case with a seed derived from
    /// `name` and the case index. On `Fail`, panics with the rendered
    /// inputs and the seed; `Reject` skips the case.
    pub fn run_named(
        &mut self,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), (String, TestCaseError)>,
    ) {
        let base = fnv1a(name);
        for i in 0..self.config.cases {
            let seed = base.wrapping_add(u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = TestRng::new(seed);
            match case(&mut rng) {
                Ok(()) => {}
                Err((_, TestCaseError::Reject(_))) => {}
                Err((input, err)) => panic!(
                    "property `{name}` failed at case {i} (seed {seed:#018x})\n\
                     input: {input}\n{err}"
                ),
            }
        }
    }
}
