//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// The strategy [`any`] returns.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Function-backed strategy used for primitive `Arbitrary` impls.
pub struct ArbWith<T> {
    gen_fn: fn(&mut TestRng) -> T,
    _marker: PhantomData<T>,
}

impl<T: Debug> Strategy for ArbWith<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = ArbWith<$t>;

            fn arbitrary() -> ArbWith<$t> {
                ArbWith {
                    // Bias 1-in-8 draws toward boundary values; fuzzed
                    // grammars break there far more often than in the
                    // bulk of the domain.
                    gen_fn: |rng| match rng.next_u64() & 7 {
                        0 => [<$t>::MIN, <$t>::MAX, 0 as $t, 1 as $t][rng.pick(4)],
                        _ => rng.next_u64() as $t,
                    },
                    _marker: PhantomData,
                }
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = ArbWith<bool>;

    fn arbitrary() -> ArbWith<bool> {
        ArbWith {
            gen_fn: |rng| rng.next_u64() & 1 == 1,
            _marker: PhantomData,
        }
    }
}
