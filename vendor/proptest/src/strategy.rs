//! The [`Strategy`] trait and the combinators/primitive strategies the
//! workspace's property tests use.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the per-case RNG.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                rng.in_range_i128(self.start as i128, self.end as i128 - 1) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy {:?}", self);
                rng.in_range_i128(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Character pool for string-pattern strategies: printable ASCII plus
/// the tokens the CLI grammars care about and a couple of multi-byte
/// characters, so fuzzed strings exercise UTF-8 boundaries.
const STRING_POOL: &[char] = &[
    'a', 'b', 'c', 'm', 's', 'u', 'n', 'x', 'Z', '0', '1', '2', '3', '7', '9', '@', '-', '+', '.',
    ',', ':', ' ', '_', '{', '}', '(', ')', '/', '=', '*', '?', '#', '\\', '"', '\'', 'µ', '√',
    '\t',
];

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?;
    let rest = rest.strip_suffix('}')?;
    let (min, max) = rest.split_once(',')?;
    let min: usize = min.trim().parse().ok()?;
    let max: usize = max.trim().parse().ok()?;
    (min <= max).then_some((min, max))
}

/// String-pattern strategies: supports the `.{min,max}` regex form
/// (arbitrary characters, length in the given bounds); any other
/// pattern falls back to 0–16 arbitrary characters.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = parse_dot_repeat(self).unwrap_or((0, 16));
        let len = rng.in_range_i128(min as i128, max as i128) as usize;
        (0..len)
            .map(|_| STRING_POOL[rng.pick(STRING_POOL.len())])
            .collect()
    }
}
