//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache,
//! so the real `rand` cannot be fetched. This crate implements the
//! exact subset of the `rand 0.8` API the workspace uses — seeded
//! [`rngs::SmallRng`], [`Rng::gen`], and [`Rng::gen_bool`] — with a
//! deterministic xoshiro256++ generator. Determinism per seed is the
//! only contract the simulator relies on; statistical quality matches
//! what a seeded `SmallRng` provides in practice (xoshiro256++ is the
//! very algorithm `rand 0.8` uses for 64-bit `SmallRng`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Types that can be sampled uniformly from an RNG's raw output.
///
/// Stands in for `rand`'s `Standard` distribution support so that
/// `rng.gen::<T>()` works for the integer types the workspace needs.
pub trait Fill: Sized {
    /// Draw one uniformly distributed value.
    fn fill_from(raw: u64) -> Self;
}

macro_rules! impl_fill {
    ($($t:ty),*) => {$(
        impl Fill for $t {
            fn fill_from(raw: u64) -> Self {
                raw as $t
            }
        }
    )*};
}
impl_fill!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Fill for bool {
    fn fill_from(raw: u64) -> Self {
        raw & 1 == 1
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// The next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of type `T`.
    fn gen<T: Fill>(&mut self) -> T {
        T::fill_from(self.next_u64())
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`, matching `rand`'s contract.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 high-quality bits -> f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// The subset of `rand::SeedableRng` the workspace uses.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic small fast RNG (xoshiro256++), seeded via
    /// splitmix64 exactly as `rand 0.8`'s 64-bit `SmallRng` is.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_covers_integer_types() {
        let mut rng = SmallRng::seed_from_u64(3);
        let _: u64 = rng.gen();
        let _: u8 = rng.gen();
        let _: bool = rng.gen();
    }
}
