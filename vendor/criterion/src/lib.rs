//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real
//! `criterion` cannot be fetched. This crate implements the subset of
//! the `criterion 0.5` API the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! wall-clock harness: each benchmark warms up once, then reports the
//! mean and minimum time over `sample_size` timed batches on stdout.
//! No statistics, no HTML reports, no regression baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs one benchmark routine repeatedly and records timings.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`: one warm-up call, then `sample_size` measured
    /// calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn run_one(label: &str, sample_size: usize, mut routine: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    routine(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label}: no samples");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label}: mean {} / min {} over {} samples",
        human(mean),
        human(min),
        bencher.samples.len()
    );
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measured iterations per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a routine under this group.
    pub fn bench_function(
        &mut self,
        id: impl Display,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, routine);
        self
    }

    /// Benchmark a routine parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            routine(b, input)
        });
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a standalone routine.
    pub fn bench_function(
        &mut self,
        id: &str,
        routine: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(id, 10, routine);
        self
    }
}

/// Group benchmark functions under one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a set of benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("probe");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &x| {
            b.iter(|| runs += x)
        });
        group.finish();
        assert!(runs >= 7, "routine executed");
    }

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut hits = 0u32;
        c.bench_function("probe_fn", |b| b.iter(|| hits += 1));
        assert!(hits >= 1);
    }
}
