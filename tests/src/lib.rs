//! Shared helpers for the cross-crate integration tests.

#![forbid(unsafe_code)]

use can_controller::{Application, Ctx, DriverEvent, TimerId};
use can_types::{BitTime, Frame, FrameKind, Mid, NodeId};
use std::any::Any;

/// A transparent application that records every driver event with its
/// timestamp and can send scheduled frames. Used to observe raw CAN
/// layer behaviour (the LCAN properties) without any protocol on top.
#[derive(Default)]
pub struct Recorder {
    /// Events observed, in order.
    pub events: Vec<(BitTime, DriverEvent)>,
    /// Frames to transmit at `on_start`.
    pub send_at_start: Vec<Frame>,
    /// Frames to transmit at given absolute instants.
    pub send_at: Vec<(BitTime, Frame)>,
}

impl Recorder {
    /// A recorder transmitting nothing.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// A recorder that sends `frame` at power-on.
    pub fn sending(frame: Frame) -> Self {
        Recorder {
            send_at_start: vec![frame],
            ..Recorder::default()
        }
    }

    /// Indications (data or remote) for a given mid.
    pub fn indications_of(&self, mid: Mid) -> Vec<BitTime> {
        self.events
            .iter()
            .filter(|(_, e)| {
                matches!(
                    e,
                    DriverEvent::DataInd { mid: m, .. } | DriverEvent::RtrInd { mid: m }
                    if *m == mid
                )
            })
            .map(|&(t, _)| t)
            .collect()
    }
}

impl Application for Recorder {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        for frame in &self.send_at_start {
            request(ctx, frame);
        }
        for (i, (at, _)) in self.send_at.iter().enumerate() {
            let delay = at.saturating_sub(ctx.now());
            ctx.start_alarm(delay, i as u64);
        }
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &DriverEvent) {
        self.events.push((ctx.now(), event.clone()));
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, _id: TimerId, tag: u64) {
        if let Some((_, frame)) = self.send_at.get(tag as usize) {
            let frame = *frame;
            request(ctx, &frame);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn request(ctx: &mut Ctx<'_>, frame: &Frame) {
    let mid = Mid::from_can_id(frame.id()).expect("recorder frames carry mids");
    match frame.kind() {
        FrameKind::Data => ctx.can_data_req(mid, *frame.payload()),
        FrameKind::Remote => ctx.can_rtr_req(mid),
    }
}

/// Shorthand node id constructor.
pub fn n(id: u8) -> NodeId {
    NodeId::new(id)
}

/// Asserts that the membership *view sequences* (not just the final
/// views) observed by the given CANELy nodes are mutually consistent:
/// one node's history must be a prefix of — or equal to — every
/// other's once aligned at the first common view. Nodes that joined
/// later naturally observe a suffix.
///
/// # Panics
///
/// Panics with a diagnostic if two histories conflict.
pub fn assert_view_sequences_consistent(
    sim: &can_controller::Simulator,
    nodes: &[u8],
) {
    use can_types::NodeSet;
    let histories: Vec<(u8, Vec<NodeSet>)> = nodes
        .iter()
        .map(|&id| {
            let views: Vec<NodeSet> = sim
                .app::<canely::CanelyStack>(n(id))
                .membership_history()
                .iter()
                .map(|e| e.view)
                .collect();
            (id, views)
        })
        .collect();
    for (a_id, a) in &histories {
        for (b_id, b) in &histories {
            if a_id >= b_id || a.is_empty() || b.is_empty() {
                continue;
            }
            // Align at b's first view inside a (b may have joined later).
            let Some(start) = a.iter().position(|v| v == &b[0]) else {
                panic!(
                    "node {b_id}'s first view {:?} never observed by node {a_id} ({:?})",
                    b[0], a
                );
            };
            let a_tail = &a[start..];
            let common = a_tail.len().min(b.len());
            assert_eq!(
                &a_tail[..common],
                &b[..common],
                "view sequences of nodes {a_id} and {b_id} diverge"
            );
        }
    }
}
