//! The babbling-idiot extension ([2]) at system level: an application
//! flooding the bus starves lower-priority traffic; a rate guardian
//! confines it locally so the protocol suite keeps its bounds.

use can_bus::{BusConfig, FaultPlan};
use can_controller::{Application, Ctx, DriverEvent, GuardianPolicy, Simulator, TimerId};
use can_types::{BitTime, Mid, MsgType, NodeId, NodeSet, Payload};
use canely::{CanelyConfig, CanelyStack, UpperEvent};
use integration::n;
use std::any::Any;

/// An application gone mad: re-queues a high-priority frame the moment
/// the previous one confirms (continuous transmission pressure).
#[derive(Default)]
struct Babbler {
    sent: u64,
}

impl Babbler {
    // The babbler uses a *clock-sync-class* identifier: higher
    // priority than ELS/JOIN would be unrealistic for application SW,
    // but a misbehaving device driver owning a mid-priority id is
    // exactly the babbling-idiot scenario of [2].
    fn mid(&self, me: NodeId) -> Mid {
        Mid::new(MsgType::ClockSync, 0, me)
    }
}

impl Application for Babbler {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        let mid = self.mid(ctx.me());
        ctx.can_data_req(mid, Payload::from_slice(&[0; 8]).unwrap());
        self.sent += 1;
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &DriverEvent) {
        if let DriverEvent::DataCnf { .. } = event {
            let mid = self.mid(ctx.me());
            ctx.can_data_req(mid, Payload::from_slice(&[0; 8]).unwrap());
            self.sent += 1;
        }
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _id: TimerId, _tag: u64) {}
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Without a guardian the babbler owns a huge share of the bus.
#[test]
fn unguarded_babbler_floods_the_bus() {
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    sim.add_node(n(0), Babbler::default());
    for id in 1..4u8 {
        sim.add_node(n(id), CanelyStack::new(CanelyConfig::default()));
    }
    sim.run_until(BitTime::new(500_000));
    let stats = sim.trace().stats(BitTime::ZERO, BitTime::new(500_000));
    let babble_share = stats.utilization_of(&[MsgType::ClockSync]);
    assert!(
        babble_share > 0.5,
        "an unguarded babbler must flood the bus, got {babble_share}"
    );
}

/// With a guardian the babbler is confined and the membership suite
/// keeps operating with its usual latency.
#[test]
fn guardian_confines_the_babbler() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    sim.add_node(n(0), Babbler::default());
    // Budget: 10 frames per 100 ms — ~1.5 % of the bus.
    sim.set_guardian(n(0), GuardianPolicy::new(10, BitTime::new(100_000)));
    for id in 1..5u8 {
        sim.add_node(n(id), CanelyStack::new(config.clone()));
    }
    let crash_at = BitTime::new(300_000);
    sim.schedule_crash(n(3), crash_at);
    sim.run_until(BitTime::new(600_000));

    let stats = sim.trace().stats(BitTime::ZERO, BitTime::new(600_000));
    let babble_share = stats.utilization_of(&[MsgType::ClockSync]);
    assert!(
        babble_share < 0.03,
        "guardian must confine the babbler, got {babble_share}"
    );
    assert!(sim.guardian_throttled(n(0)) > 0, "guardian actually acted");

    // The membership service is unimpaired: crash detected in bound.
    let expected = NodeSet::from_bits(0b1_0110);
    for id in [1u8, 2, 4] {
        let stack = sim.app::<CanelyStack>(n(id));
        assert_eq!(stack.view(), expected, "node {id}");
        let detected = stack
            .events()
            .iter()
            .find_map(|&(t, e)| match e {
                UpperEvent::FailureNotified(r) if r == n(3) => Some(t),
                _ => None,
            })
            .expect("crash detected despite babbler");
        assert!(
            detected - crash_at <= config.detection_latency_bound() + BitTime::new(2_000),
            "node {id}: latency {}",
            detected - crash_at
        );
    }
}

/// The guardian throttles *all* of a node's traffic — including its
/// own protocol frames — so its budget must be provisioned for the
/// protocol suite (the design tension [2] points out).
#[test]
fn undersized_guardian_budget_silences_its_own_node() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..4u8 {
        sim.add_node(n(id), CanelyStack::new(config.clone()));
    }
    // Node 3 gets an absurd budget: one frame per 100 ms — its ELS
    // (every 5 ms) cannot flow, so the others declare it failed.
    sim.set_guardian(n(3), GuardianPolicy::new(1, BitTime::new(100_000)));
    sim.run_until(BitTime::new(600_000));
    let expected = NodeSet::first_n(3);
    for id in 0..3u8 {
        assert_eq!(
            sim.app::<CanelyStack>(n(id)).view(),
            expected,
            "node {id}: a starved node is indistinguishable from a crashed one"
        );
    }
}
