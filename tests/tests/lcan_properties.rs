//! Validates that the simulated substrate exhibits exactly the CAN
//! MAC- and LLC-level properties the paper's protocols are built on
//! (Figs. 2 and 3 of the paper).

use can_bus::{
    AccepterSpec, BusConfig, FaultEffect, FaultMatcher, FaultPlan, ScriptedFault, TimingModel,
};
use can_controller::{DriverEvent, Simulator};
use can_types::{BitTime, Frame, Mid, MsgType, NodeSet, Payload};
use integration::{n, Recorder};

fn app_mid(node: u8) -> Mid {
    Mid::new(MsgType::AppData, 0, n(node))
}

fn data_frame(node: u8, bytes: &[u8]) -> Frame {
    Frame::data(app_mid(node), Payload::from_slice(bytes).unwrap())
}

/// MCAN1 — Broadcast: correct nodes receiving an uncorrupted frame
/// transmission receive the *same* frame.
#[test]
fn mcan1_broadcast_value_agreement() {
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    sim.add_node(n(0), Recorder::sending(data_frame(0, &[0xDE, 0xAD])));
    for id in 1..5 {
        sim.add_node(n(id), Recorder::new());
    }
    sim.run_until(BitTime::new(10_000));
    let mut payloads = Vec::new();
    for id in 1..5 {
        let rec = sim.app::<Recorder>(n(id));
        for (_, event) in &rec.events {
            if let DriverEvent::DataInd { payload, .. } = event {
                payloads.push(payload.as_slice().to_vec());
            }
        }
    }
    assert_eq!(payloads.len(), 4);
    assert!(payloads.windows(2).all(|w| w[0] == w[1]));
}

/// MCAN2 — Error detection: a corrupted frame never surfaces as a
/// *different* frame; it surfaces as an omission (followed by
/// retransmission).
#[test]
fn mcan2_corruption_is_detected_not_delivered() {
    let mut faults = FaultPlan::none();
    faults.push_scripted(ScriptedFault {
        matcher: FaultMatcher::any(),
        effect: FaultEffect::ConsistentOmission,
        count: 1,
    });
    let mut sim = Simulator::new(BusConfig::default(), faults);
    sim.add_node(n(0), Recorder::sending(data_frame(0, &[7; 8])));
    sim.add_node(n(1), Recorder::new());
    sim.run_until(BitTime::new(10_000));
    let rec = sim.app::<Recorder>(n(1));
    // Exactly one delivery (the retransmission), with intact contents.
    let inds: Vec<_> = rec
        .events
        .iter()
        .filter_map(|(_, e)| match e {
            DriverEvent::DataInd { payload, .. } => Some(payload.as_slice().to_vec()),
            _ => None,
        })
        .collect();
    assert_eq!(inds, vec![vec![7u8; 8]]);
    // The trace shows the errored attempt.
    assert_eq!(
        sim.trace().stats(BitTime::ZERO, BitTime::new(10_000)).errors,
        1
    );
}

/// MCAN3 — Bounded omission degree: in a window, stochastic omissions
/// hit at most `k` transmissions; a frame is never retried forever.
#[test]
fn mcan3_bounded_omission_degree() {
    let k = 4u32;
    let mut sim = Simulator::new(
        BusConfig::default(),
        FaultPlan::seeded(3)
            .with_consistent_rate(1.0) // every transmission would fail…
            .with_omission_bound(k, BitTime::new(1_000_000)), // …but at most k do
    );
    sim.add_node(n(0), Recorder::sending(data_frame(0, &[1])));
    sim.add_node(n(1), Recorder::new());
    sim.run_until(BitTime::new(100_000));
    let stats = sim.trace().stats(BitTime::ZERO, BitTime::new(100_000));
    assert_eq!(stats.errors as u32, k, "exactly k omissions then success");
    assert_eq!(sim.app::<Recorder>(n(1)).indications_of(app_mid(0)).len(), 1);
}

/// MCAN4 — Bounded transmission delay: a queued frame is transmitted
/// within a bounded delay even while higher-priority traffic competes.
#[test]
fn mcan4_bounded_transmission_delay() {
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    // Node 1's low-priority frame contends with a burst of
    // higher-priority frames from node 0.
    let burst: Vec<(BitTime, Frame)> = (0..10)
        .map(|i| {
            (
                BitTime::new(10 + i),
                Frame::remote(Mid::new(MsgType::Els, i as u16, n(0))),
            )
        })
        .collect();
    sim.add_node(
        n(0),
        Recorder {
            send_at: burst,
            ..Recorder::default()
        },
    );
    sim.add_node(n(1), Recorder::sending(data_frame(1, &[9; 8])));
    sim.add_node(n(2), Recorder::new());
    sim.run_until(BitTime::new(100_000));
    let deliveries = sim.app::<Recorder>(n(2)).indications_of(app_mid(1));
    assert_eq!(deliveries.len(), 1);
    // Bound: 10 ELS frames (~80 bits each incl. intermission) plus own
    // frame — well under 2 000 bit-times.
    assert!(deliveries[0] < BitTime::new(2_000), "delay {}", deliveries[0]);
}

/// LCAN1 — Validity: a correct node's broadcast is eventually
/// delivered to a correct node (even under omissions).
#[test]
fn lcan1_validity_under_noise() {
    let mut sim = Simulator::new(
        BusConfig::default().with_timing(TimingModel::WorstCase),
        FaultPlan::seeded(11).with_consistent_rate(0.3),
    );
    sim.add_node(n(0), Recorder::sending(data_frame(0, &[5; 4])));
    sim.add_node(n(1), Recorder::new());
    sim.run_until(BitTime::new(100_000));
    assert_eq!(sim.app::<Recorder>(n(1)).indications_of(app_mid(0)).len(), 1);
}

/// LCAN2 caveat — Best-effort agreement: delivery to all correct nodes
/// is guaranteed only *if the sender remains correct*. The
/// inconsistent-omission-plus-crash scenario violates all-or-nothing:
/// exactly the failure the CANELy protocols exist to mask.
#[test]
fn lcan2_inconsistency_on_sender_crash() {
    let mut faults = FaultPlan::none();
    faults.push_scripted(ScriptedFault {
        matcher: FaultMatcher::any(),
        effect: FaultEffect::InconsistentOmission {
            accepters: AccepterSpec::Exactly(NodeSet::singleton(n(1))),
            crash_sender: true,
        },
        count: 1,
    });
    let mut sim = Simulator::new(BusConfig::default(), faults);
    sim.add_node(n(0), Recorder::sending(data_frame(0, &[3])));
    sim.add_node(n(1), Recorder::new());
    sim.add_node(n(2), Recorder::new());
    sim.run_until(BitTime::new(100_000));
    assert_eq!(sim.app::<Recorder>(n(1)).indications_of(app_mid(0)).len(), 1);
    assert_eq!(sim.app::<Recorder>(n(2)).indications_of(app_mid(0)).len(), 0);
}

/// LCAN3 — At-least-once delivery: an inconsistently omitted frame is
/// delivered *at least once* to every correct node, with duplicates at
/// the accepters.
#[test]
fn lcan3_at_least_once_with_duplicates() {
    let mut faults = FaultPlan::none();
    faults.push_scripted(ScriptedFault {
        matcher: FaultMatcher::any(),
        effect: FaultEffect::InconsistentOmission {
            accepters: AccepterSpec::Exactly(NodeSet::singleton(n(1))),
            crash_sender: false,
        },
        count: 1,
    });
    let mut sim = Simulator::new(BusConfig::default(), faults);
    sim.add_node(n(0), Recorder::sending(data_frame(0, &[3])));
    sim.add_node(n(1), Recorder::new());
    sim.add_node(n(2), Recorder::new());
    sim.run_until(BitTime::new(100_000));
    assert_eq!(
        sim.app::<Recorder>(n(1)).indications_of(app_mid(0)).len(),
        2,
        "accepter sees a duplicate"
    );
    assert_eq!(
        sim.app::<Recorder>(n(2)).indications_of(app_mid(0)).len(),
        1,
        "other listeners see exactly the retransmission"
    );
}

/// LCAN4 — Bounded inconsistent omission degree: stochastic
/// inconsistent omissions are capped at `j` per window.
#[test]
fn lcan4_bounded_inconsistent_degree() {
    let j = 2u32;
    let mut sim = Simulator::new(
        BusConfig::default(),
        FaultPlan::seeded(5)
            .with_inconsistent_rate(1.0)
            .with_omission_bound(64, BitTime::new(10_000_000))
            .with_inconsistent_bound(j),
    );
    // A stream of 20 frames from node 0.
    let sends: Vec<(BitTime, Frame)> = (0..20)
        .map(|i| {
            (
                BitTime::new(1_000 * (i as u64 + 1)),
                Frame::data(
                    Mid::new(MsgType::AppData, i as u16, n(0)),
                    Payload::from_slice(&[i]).unwrap(),
                ),
            )
        })
        .collect();
    sim.add_node(
        n(0),
        Recorder {
            send_at: sends,
            ..Recorder::default()
        },
    );
    sim.add_node(n(1), Recorder::new());
    sim.add_node(n(2), Recorder::new());
    sim.run_until(BitTime::new(200_000));
    let stats = sim.trace().stats(BitTime::ZERO, BitTime::new(200_000));
    assert_eq!(stats.errors as u32, j, "inconsistent omissions capped at j");
}

/// The `.nty` extension: arrival notification without message data —
/// and it fires for own transmissions too (Fig. 4).
#[test]
fn nty_extension_semantics() {
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    sim.add_node(n(0), Recorder::sending(data_frame(0, &[1, 2, 3])));
    sim.add_node(n(1), Recorder::new());
    sim.run_until(BitTime::new(10_000));
    for id in 0..2 {
        let rec = sim.app::<Recorder>(n(id));
        assert!(
            rec.events
                .iter()
                .any(|(_, e)| matches!(e, DriverEvent::DataNty { mid } if *mid == app_mid(0))),
            "node {id} must get can-data.nty (own transmissions included)"
        );
    }
}
