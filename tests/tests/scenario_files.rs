//! Every checked-in scenario file is an executable regression test:
//! parse it, run it, and hold it to its own `expect-view` assertion.
//!
//! `partition_heal.canely` additionally replays under the campaign
//! invariant oracle: the blackout straddling a membership cycle
//! boundary must produce no false suspicion and leave the crash of
//! node 3 detected within the analytical bounds.

use canely_campaign::RunSpec;
use canely_cli::scenario::Scenario;

fn scenario_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../scenarios")
}

fn read(name: &str) -> String {
    let path = scenario_dir().join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn every_checked_in_scenario_passes_its_expectation() {
    let mut seen = 0;
    for entry in std::fs::read_dir(scenario_dir()).expect("scenarios directory") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "canely") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).expect("scenario file");
        let scenario =
            Scenario::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let out = scenario
            .execute()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert!(
            out.contains("expect-view: ok"),
            "{}: missing expect-view assertion\n{out}",
            path.display()
        );
    }
    assert!(seen >= 3, "expected at least 3 scenario files, found {seen}");
}

#[test]
fn partition_heal_straddles_the_cycle_boundary() {
    // The window [128 ms, 132 ms) must bracket the 130 ms membership
    // cycle tick (join_wait 70 ms + 2·Tm) — otherwise the scenario no
    // longer tests what its name claims.
    let run = RunSpec::from_scenario(&read("partition_heal.canely")).expect("campaign subset");
    let &(from, until) = run.inaccessibility.first().expect("a blackout window");
    let join_wait = run.tm * 2 + can_types::BitTime::new(10_000);
    let boundary = join_wait + run.tm * 2;
    assert!(
        from < boundary && boundary < until,
        "window [{from}, {until}) does not straddle the cycle boundary at {boundary}"
    );
}

#[test]
fn partition_heal_is_clean_under_the_invariant_oracle() {
    let run = RunSpec::from_scenario(&read("partition_heal.canely")).expect("campaign subset");
    let outcome = canely_campaign::execute(&run, false);
    assert!(
        outcome.violations.is_empty(),
        "violations: {:?}",
        outcome.violations
    );
}
