//! The live telemetry plane, end to end: stable exports are
//! byte-identical for any worker count, progress streaming changes no
//! summary byte, and the self-profiler accounts for (nearly) all of a
//! campaign's wall time.

use can_controller::SIM_PHASES;
use can_types::BitTime;
use canely_campaign::{
    run_campaign, run_campaign_with, CampaignOptions, CampaignSpec, ProgressOptions, ProgressSink,
    RUN_PHASES,
};
use canely_metrics::{Registry, Stability};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The 64-run scaling matrix of the `sim` bench: crash budgets ×
/// omission rates × 16 seeds.
fn large_spec() -> CampaignSpec {
    CampaignSpec {
        name: "telemetry".into(),
        seeds: (0, 16),
        crash_budgets: vec![0, 1],
        consistent_rates: vec![0.0, 0.01],
        until: BitTime::new(200_000),
        settle: BitTime::new(100_000),
        ..CampaignSpec::default()
    }
}

fn options(workers: usize, registry: &Registry) -> CampaignOptions {
    CampaignOptions {
        workers,
        registry: registry.clone(),
        progress: None,
    }
}

#[test]
fn stable_exports_are_byte_identical_across_worker_counts() {
    let spec = large_spec();
    assert!(spec.expand().len() >= 64, "matrix must be large");
    let mut exports = Vec::new();
    for workers in [1usize, 8] {
        let registry = Registry::new();
        let result = run_campaign_with(&spec, &options(workers, &registry));
        assert!(result.report.clean(), "{}", result.report.render());
        exports.push((
            workers,
            result.report.to_json(),
            registry.to_prometheus(false),
            registry.to_json(false),
        ));
    }
    let (_, ref json1, ref prom1, ref reg_json1) = exports[0];
    for (workers, json, prom, reg_json) in &exports[1..] {
        assert_eq!(json, json1, "summary diverged at {workers} workers");
        assert_eq!(prom, prom1, "stable Prometheus export diverged at {workers} workers");
        assert_eq!(reg_json, reg_json1, "stable JSON export diverged at {workers} workers");
    }
    // The stable export carries real totals and no wall-clock series.
    assert!(prom1.contains("canely_campaign_runs_total 64"), "{prom1}");
    assert!(prom1.contains("canely_sim_steps_total"), "{prom1}");
    assert!(prom1.contains("canely_detection_latency_bittimes_bucket"), "{prom1}");
    assert!(!prom1.contains("phase_nanos"), "{prom1}");
}

#[test]
fn progress_streaming_changes_no_summary_byte() {
    let spec = large_spec();
    let baseline = run_campaign(&spec, 1).report.to_json();
    for workers in [1usize, 8] {
        let lines = Arc::new(Mutex::new(Vec::new()));
        let options = CampaignOptions {
            workers,
            registry: Registry::new(),
            progress: Some(ProgressOptions {
                interval: Duration::from_millis(50),
                metrics_json: true,
                sink: ProgressSink::Collect(Arc::clone(&lines)),
            }),
        };
        let result = run_campaign_with(&spec, &options);
        assert_eq!(
            result.report.to_json(),
            baseline,
            "progress at {workers} workers perturbed the summary"
        );
        let lines = lines.lock().unwrap();
        let progress: Vec<&String> =
            lines.iter().filter(|l| l.starts_with("progress:")).collect();
        assert!(!progress.is_empty(), "no progress lines at {workers} workers");
        let last = progress.last().unwrap();
        assert!(last.contains("[done]"), "{last}");
        assert!(last.contains("64/64 runs"), "{last}");
        assert!(last.contains("violations 0"), "{last}");
        assert!(last.contains(&format!("{workers} workers")), "{last}");
        // --metrics-json interleaves registry snapshots.
        assert!(
            lines.iter().any(|l| l.starts_with("{\"metrics\":[")),
            "no registry snapshots were streamed"
        );
    }
}

#[test]
fn profiler_accounts_for_the_campaign_wall_time() {
    let spec = large_spec();
    let registry = Registry::new();
    let started = Instant::now();
    let result = run_campaign_with(&spec, &options(1, &registry));
    let wall = started.elapsed().as_nanos() as u64;
    assert!(result.report.clean());

    // Re-attaching by name reads the phase counters back.
    let phase_nanos: u64 = SIM_PHASES
        .iter()
        .map(|p| ("canely_sim_phase_nanos_total", *p))
        .chain(RUN_PHASES.iter().map(|p| ("canely_run_phase_nanos_total", *p)))
        .map(|(base, phase)| {
            registry
                .counter(&format!("{base}{{phase=\"{phase}\"}}"), "", Stability::Volatile)
                .get()
        })
        .sum();
    assert!(phase_nanos > 0);
    assert!(phase_nanos <= wall, "profiled {phase_nanos} ns of {wall} ns");
    assert!(
        phase_nanos as f64 >= 0.9 * wall as f64,
        "named phases cover {phase_nanos} ns of {wall} ns wall \
         ({:.1}% < 90%)",
        100.0 * phase_nanos as f64 / wall as f64
    );
}

#[test]
fn federated_runs_feed_the_federation_counters() {
    let spec = CampaignSpec::parse(
        "name fed\nnodes 4\ntm 30ms\nseeds 0..1\ncrash-budget 1\nsegments 2\n\
         until 400ms\nsettle 180ms\n",
    )
    .unwrap();
    let registry = Registry::new();
    let result = run_campaign_with(&spec, &options(1, &registry));
    assert!(result.report.clean(), "{}", result.report.render());
    let quanta = registry
        .counter("canely_fed_pump_quanta_total", "", Stability::Stable)
        .get();
    let relayed = registry
        .counter("canely_fed_relayed_frames_total", "", Stability::Stable)
        .get();
    assert!(quanta > 0, "the bridge pump must advance quanta");
    assert!(relayed > 0, "digest gossip must cross the bridge");
}
