//! Cross-crate integration: every CANELy service family sharing one
//! bus, plus fault-confinement (weak-fail-silence) enforcement.

use can_bus::{BusConfig, FaultEffect, FaultMatcher, FaultPlan, ScriptedFault};
use can_controller::Simulator;
use can_types::{BitTime, Frame, Mid, MsgType, NodeSet, Payload};
use canely::{CanelyConfig, CanelyStack};
use canely_broadcast::common::ScheduledSend;
use canely_broadcast::{Edcan, Relcan, Totcan};
use canely_clock::{ensemble_precision, ClockConfig, ClockSync};
use integration::{n, Recorder};

/// Membership, broadcast and plain traffic coexist: protocol traffic
/// outranks data, and every service meets its guarantee.
#[test]
fn membership_and_broadcast_share_the_bus() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    // Membership group: nodes 0-3.
    for id in 0..4u8 {
        sim.add_node(n(id), CanelyStack::new(config.clone()));
    }
    // Broadcast group: nodes 8-10 exchanging EDCAN messages.
    sim.add_node(
        n(8),
        Edcan::new().with_schedule(
            (0..20)
                .map(|i| {
                    ScheduledSend::new(
                        BitTime::new(100_000 + i * 9_000),
                        Payload::from_slice(&[i as u8]).unwrap(),
                    )
                })
                .collect(),
        ),
    );
    for id in 9..=10u8 {
        sim.add_node(n(id), Edcan::new());
    }
    sim.schedule_crash(n(3), BitTime::new(300_000));
    sim.run_until(BitTime::new(700_000));

    // Membership settled despite the broadcast load.
    let expected = NodeSet::first_n(3);
    for id in 0..3u8 {
        assert_eq!(sim.app::<CanelyStack>(n(id)).view(), expected);
    }
    // Every broadcast delivered everywhere exactly once.
    for id in 9..=10u8 {
        assert_eq!(sim.app::<Edcan>(n(id)).deliveries().len(), 20, "node {id}");
    }
}

/// All three broadcast protocols at once (distinct type codes keep
/// them independent).
#[test]
fn three_broadcast_protocols_coexist() {
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    let payload = Payload::from_slice(&[0xCC]).unwrap();
    sim.add_node(
        n(0),
        Edcan::new().with_schedule(vec![ScheduledSend::new(BitTime::new(1_000), payload)]),
    );
    sim.add_node(
        n(1),
        Relcan::new(BitTime::new(2_000))
            .with_schedule(vec![ScheduledSend::new(BitTime::new(1_000), payload)]),
    );
    sim.add_node(
        n(2),
        Totcan::new(BitTime::new(5_000))
            .with_schedule(vec![ScheduledSend::new(BitTime::new(1_000), payload)]),
    );
    // Dedicated observers for each protocol.
    sim.add_node(n(3), Edcan::new());
    sim.add_node(n(4), Relcan::new(BitTime::new(2_000)));
    sim.add_node(n(5), Totcan::new(BitTime::new(5_000)));
    sim.run_until(BitTime::new(60_000));
    assert_eq!(sim.app::<Edcan>(n(3)).deliveries().len(), 1);
    assert_eq!(sim.app::<Relcan>(n(4)).deliveries().len(), 1);
    assert_eq!(sim.app::<Totcan>(n(5)).deliveries().len(), 1);
}

/// Clock synchronization stays within its precision figure while a
/// membership group churns on the same bus.
#[test]
fn clock_precision_survives_membership_churn() {
    let clock_members = NodeSet::from_bits(0b11 << 10);
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..4u8 {
        sim.add_node(n(id), CanelyStack::new(config.clone()));
    }
    sim.add_node_at(n(7), CanelyStack::new(config.clone()), BitTime::new(400_000));
    sim.add_node(
        n(10),
        ClockSync::new(ClockConfig::new(clock_members).with_drift_ppm(100)),
    );
    sim.add_node(
        n(11),
        ClockSync::new(
            ClockConfig::new(clock_members)
                .with_drift_ppm(-100)
                .with_initial_offset(5_000),
        ),
    );
    sim.schedule_crash(n(2), BitTime::new(500_000));
    sim.run_until(BitTime::new(1_500_000));

    let clocks = [
        sim.app::<ClockSync>(n(10)),
        sim.app::<ClockSync>(n(11)),
    ];
    let precision = ensemble_precision(&clocks, sim.now());
    assert!(precision <= 60, "precision {precision} µs");
    // And membership converged too.
    let expected = NodeSet::from_bits(0b1000_1011);
    for id in [0u8, 1, 3, 7] {
        assert_eq!(sim.app::<CanelyStack>(n(id)).view(), expected);
    }
}

/// Weak-fail-silence enforcement: a transmitter whose frames keep
/// failing is driven bus-off by its fault-confinement counters and
/// stops disturbing the bus (Sec. 3/4).
#[test]
fn fault_confinement_forces_bus_off() {
    let mut faults = FaultPlan::none();
    // Every transmission of node 0 fails, 40 times (TEC: 40 × 8 = 320
    // — past the 256 bus-off threshold).
    faults.push_scripted(ScriptedFault {
        matcher: FaultMatcher {
            sender: Some(n(0)),
            ..FaultMatcher::default()
        },
        effect: FaultEffect::ConsistentOmission,
        count: 40,
    });
    let mut sim = Simulator::new(BusConfig::default(), faults);
    sim.add_node(
        n(0),
        Recorder::sending(Frame::data(
            Mid::new(MsgType::AppData, 0, n(0)),
            Payload::from_slice(&[1]).unwrap(),
        )),
    );
    sim.add_node(n(1), Recorder::new());
    sim.run_until(BitTime::new(100_000));
    assert!(
        sim.controller(n(0)).is_bus_off(),
        "TEC must force bus-off: tec = {}",
        sim.controller(n(0)).confinement().tec()
    );
    // The victim frame was never delivered.
    assert!(sim.app::<Recorder>(n(1)).events.is_empty());
}

/// Bus-off is not global: other nodes keep communicating.
#[test]
fn bus_off_node_does_not_jam_others() {
    let mut faults = FaultPlan::none();
    faults.push_scripted(ScriptedFault {
        matcher: FaultMatcher {
            sender: Some(n(0)),
            ..FaultMatcher::default()
        },
        effect: FaultEffect::ConsistentOmission,
        count: 40,
    });
    let mut sim = Simulator::new(BusConfig::default(), faults);
    sim.add_node(
        n(0),
        Recorder::sending(Frame::data(
            Mid::new(MsgType::AppData, 0, n(0)),
            Payload::from_slice(&[1]).unwrap(),
        )),
    );
    sim.add_node(
        n(1),
        Recorder {
            send_at: vec![(
                BitTime::new(50_000),
                Frame::data(
                    Mid::new(MsgType::AppData, 0, n(1)),
                    Payload::from_slice(&[2]).unwrap(),
                ),
            )],
            ..Recorder::default()
        },
    );
    sim.add_node(n(2), Recorder::new());
    sim.run_until(BitTime::new(100_000));
    assert!(sim.controller(n(0)).is_bus_off());
    let heard = sim
        .app::<Recorder>(n(2))
        .indications_of(Mid::new(MsgType::AppData, 0, n(1)));
    assert_eq!(heard.len(), 1, "node 1 must still get through");
}
