//! Media redundancy ([17]) at system level: a single-medium bus
//! partition violates the channel assumption and splits the
//! membership; the replicated-media scheme masks the same partition
//! completely.
//!
//! This is the system-model footnote made executable: "there is no
//! permanent failure of the channel (e.g. medium partition) — this
//! assumption can be enforced through the media redundancy scheme
//! described in \[17\]".

use can_bus::{BusConfig, FaultPlan, MediaFault};
use can_controller::Simulator;
use can_types::{BitTime, NodeSet};
use canely::{CanelyConfig, CanelyStack, UpperEvent};
use integration::n;

const SPLIT_A: u64 = 0b0011; // nodes 0,1
const SPLIT_B: u64 = 0b1100; // nodes 2,3

fn cluster(sim: &mut Simulator) {
    let config = CanelyConfig::default();
    for id in 0..4u8 {
        sim.add_node(n(id), CanelyStack::new(config.clone()));
    }
}

/// Without redundancy, a lasting medium partition makes each side
/// declare the other failed — split brain. (This demonstrates *why*
/// the paper's system model must exclude partitions.)
#[test]
fn single_medium_partition_splits_the_membership() {
    let mut faults = FaultPlan::none();
    faults.push_media_fault(MediaFault {
        medium: 0,
        isolated: NodeSet::from_bits(SPLIT_B),
        from: BitTime::new(300_000),
        until: BitTime::new(900_000),
    });
    let mut sim = Simulator::new(BusConfig::default(), faults);
    cluster(&mut sim);
    sim.run_until(BitTime::new(800_000));

    // Each side has expelled the other.
    let view_a = sim.app::<CanelyStack>(n(0)).view();
    let view_b = sim.app::<CanelyStack>(n(2)).view();
    assert_eq!(view_a, NodeSet::from_bits(SPLIT_A), "side A view {view_a}");
    assert_eq!(view_b, NodeSet::from_bits(SPLIT_B), "side B view {view_b}");
    // Both sides issued failure notifications for the other side.
    assert!(sim
        .app::<CanelyStack>(n(0))
        .events()
        .iter()
        .any(|(_, e)| matches!(e, UpperEvent::FailureNotified(r) if r.as_u8() >= 2)));
}

/// With the dual-media scheme of [17], the same partition on one
/// medium is invisible: no failure notifications, view intact.
#[test]
fn dual_media_mask_the_partition() {
    let mut faults = FaultPlan::none().with_media_count(2);
    faults.push_media_fault(MediaFault {
        medium: 0,
        isolated: NodeSet::from_bits(SPLIT_B),
        from: BitTime::new(300_000),
        until: BitTime::new(900_000),
    });
    let mut sim = Simulator::new(BusConfig::default(), faults);
    cluster(&mut sim);
    sim.run_until(BitTime::new(800_000));

    for id in 0..4u8 {
        let stack = sim.app::<CanelyStack>(n(id));
        assert_eq!(stack.view(), NodeSet::first_n(4), "node {id}");
        assert!(
            !stack
                .events()
                .iter()
                .any(|(_, e)| matches!(e, UpperEvent::FailureNotified(_))),
            "node {id}: spurious failure under masked partition"
        );
    }
}

/// Redundancy degrades gracefully: both media partitioned (the
/// double-fault case beyond the scheme's coverage) splits the system
/// again.
#[test]
fn double_media_partition_exceeds_coverage() {
    let mut faults = FaultPlan::none().with_media_count(2);
    for medium in 0..2 {
        faults.push_media_fault(MediaFault {
            medium,
            isolated: NodeSet::from_bits(SPLIT_B),
            from: BitTime::new(300_000),
            until: BitTime::new(900_000),
        });
    }
    let mut sim = Simulator::new(BusConfig::default(), faults);
    cluster(&mut sim);
    sim.run_until(BitTime::new(800_000));
    assert_eq!(
        sim.app::<CanelyStack>(n(0)).view(),
        NodeSet::from_bits(SPLIT_A)
    );
    assert_eq!(
        sim.app::<CanelyStack>(n(2)).view(),
        NodeSet::from_bits(SPLIT_B)
    );
}

/// A *transient* single-medium partition shorter than the detection
/// latency is also harmless even without redundancy (the surveillance
/// margin absorbs it).
#[test]
fn short_partition_below_detection_latency_is_absorbed() {
    let config = CanelyConfig::default();
    let mut faults = FaultPlan::none();
    // 3 ms partition < Th + Ttd = 7.5 ms.
    faults.push_media_fault(MediaFault {
        medium: 0,
        isolated: NodeSet::from_bits(SPLIT_B),
        from: BitTime::new(300_000),
        until: BitTime::new(303_000),
    });
    let mut sim = Simulator::new(BusConfig::default(), faults);
    for id in 0..4u8 {
        sim.add_node(n(id), CanelyStack::new(config.clone()));
    }
    sim.run_until(BitTime::new(800_000));
    for id in 0..4u8 {
        assert_eq!(sim.app::<CanelyStack>(n(id)).view(), NodeSet::first_n(4));
    }
}
