//! Cross-validation of the Tindell–Burns response-time analysis
//! (`canely-analysis::response_time`, the source of the `Tltm` bound)
//! against the simulator: for a contended periodic workload, every
//! *measured* frame response time must stay within its *analytic*
//! worst-case bound.

use can_bus::{BusConfig, FaultPlan};
use can_controller::{DriverEvent, Simulator};
use can_types::{BitTime, Frame, Mid, MsgType, Payload};
use canely_analysis::{MessageSpec, ResponseTimeAnalysis};
use integration::{n, Recorder};

/// One periodic stream of the workload.
struct Stream {
    node: u8,
    msg_type: MsgType,
    period: BitTime,
    payload: usize,
}

impl Stream {
    fn mid(&self) -> Mid {
        Mid::new(self.msg_type, 0, n(self.node))
    }
    fn frame(&self) -> Frame {
        Frame::data(self.mid(), Payload::from_slice(&vec![0x5A; self.payload]).unwrap())
    }
    fn spec(&self) -> MessageSpec {
        MessageSpec::periodic(self.mid().to_can_id(), self.period, self.payload)
    }
}

fn workload() -> Vec<Stream> {
    vec![
        // High-priority control stream.
        Stream {
            node: 0,
            msg_type: MsgType::ClockSync,
            period: BitTime::new(1_000),
            payload: 2,
        },
        // Two mid-priority streams.
        Stream {
            node: 1,
            msg_type: MsgType::Edcan,
            period: BitTime::new(2_000),
            payload: 8,
        },
        Stream {
            node: 2,
            msg_type: MsgType::Totcan,
            period: BitTime::new(2_500),
            payload: 4,
        },
        // A low-priority background stream.
        Stream {
            node: 3,
            msg_type: MsgType::AppData,
            period: BitTime::new(5_000),
            payload: 8,
        },
    ]
}

#[test]
fn measured_response_times_within_analytic_bounds() {
    let streams = workload();

    // Analytic bounds.
    let mut rta = ResponseTimeAnalysis::new();
    for s in &streams {
        rta.push(s.spec());
    }
    assert!(rta.utilization() < 1.0, "workload must be schedulable");

    // Simulated run: schedule every instance over a 100 ms window.
    let horizon = BitTime::new(100_000);
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for s in &streams {
        let sends: Vec<(BitTime, Frame)> = (0..horizon.as_u64() / s.period.as_u64())
            .map(|k| (BitTime::new(k * s.period.as_u64() + 1), s.frame()))
            .collect();
        sim.add_node(
            n(s.node),
            Recorder {
                send_at: sends,
                ..Recorder::default()
            },
        );
    }
    sim.add_node(n(10), Recorder::new()); // observer
    sim.run_until(horizon + BitTime::new(5_000));

    // Measured worst response per stream: delivery instant at the
    // observer minus the (periodic) request instant.
    let observer = sim.app::<Recorder>(n(10));
    for s in &streams {
        let analytic = rta.response_time(s.mid().to_can_id()).unwrap();
        let deliveries: Vec<BitTime> = observer
            .events
            .iter()
            .filter_map(|&(t, ref e)| match e {
                DriverEvent::DataInd { mid, .. } if *mid == s.mid() => Some(t),
                _ => None,
            })
            .collect();
        assert!(
            deliveries.len() >= (horizon.as_u64() / s.period.as_u64()) as usize - 1,
            "stream {} lost instances",
            s.mid()
        );
        let mut worst = BitTime::ZERO;
        for (k, &delivered) in deliveries.iter().enumerate() {
            let requested = BitTime::new(k as u64 * s.period.as_u64() + 1);
            assert!(delivered >= requested, "causality");
            worst = worst.max(delivered - requested);
        }
        assert!(
            worst <= analytic,
            "stream {}: measured worst {} exceeds analytic bound {}",
            s.mid(),
            worst,
            analytic
        );
        // The analysis is not uselessly loose either: within 8x.
        assert!(
            worst * 8 >= analytic,
            "stream {}: analytic {} implausibly loose vs measured {}",
            s.mid(),
            analytic,
            worst
        );
    }
}

/// Priority inversion check: the highest-priority stream's measured
/// worst response is bounded by one blocking frame plus its own
/// transmission, even under full contention.
#[test]
fn highest_priority_stream_sees_only_blocking() {
    let streams = workload();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    let horizon = BitTime::new(50_000);
    for s in &streams {
        let sends: Vec<(BitTime, Frame)> = (0..horizon.as_u64() / s.period.as_u64())
            .map(|k| (BitTime::new(k * s.period.as_u64() + 1), s.frame()))
            .collect();
        sim.add_node(
            n(s.node),
            Recorder {
                send_at: sends,
                ..Recorder::default()
            },
        );
    }
    sim.add_node(n(10), Recorder::new());
    sim.run_until(horizon + BitTime::new(5_000));

    let top = &streams[0];
    let observer = sim.app::<Recorder>(n(10));
    let mut worst = BitTime::ZERO;
    for (k, &(t, _)) in observer
        .events
        .iter()
        .filter(|(_, e)| matches!(e, DriverEvent::DataInd { mid, .. } if *mid == top.mid()))
        .enumerate()
    {
        let requested = BitTime::new(k as u64 * top.period.as_u64() + 1);
        worst = worst.max(t - requested);
    }
    // Blocking: longest lower-priority frame (157 bits + overheads),
    // plus own transmission (~100 bits): well under 400 bit-times.
    assert!(
        worst < BitTime::new(400),
        "top-priority stream delayed {worst}"
    );
}
