//! End-to-end agreement properties of the CANELy membership service —
//! the paper's central claims, exercised across fault campaigns,
//! churn, and configuration sweeps.

use can_bus::{
    AccepterSpec, BusConfig, FaultEffect, FaultMatcher, FaultPlan, ScriptedFault,
};
use can_controller::Simulator;
use can_types::{BitTime, MsgType, NodeId, NodeSet};
use canely::{CanelyConfig, CanelyStack, TrafficConfig, UpperEvent};
use integration::n;

fn build_cluster(sim: &mut Simulator, count: u8, config: &CanelyConfig) {
    for id in 0..count {
        let mut stack = CanelyStack::new(config.clone());
        if id % 2 == 1 {
            stack = stack.with_traffic(
                TrafficConfig::periodic(BitTime::new(3_000), 4)
                    .with_offset(BitTime::new(u64::from(id) * 157)),
            );
        }
        sim.add_node(n(id), stack);
    }
}

fn views_agree(sim: &Simulator, survivors: &[u8]) -> bool {
    let reference = sim.app::<CanelyStack>(n(survivors[0])).view();
    survivors
        .iter()
        .all(|&id| sim.app::<CanelyStack>(n(id)).view() == reference)
}

/// The fundamental problem: "the ability of correct nodes to reach
/// agreement on the Vs set, within a bounded and known time".
#[test]
fn agreement_over_seeded_fault_campaigns() {
    for seed in 0..20u64 {
        let faults = FaultPlan::seeded(seed)
            .with_consistent_rate(0.03)
            .with_inconsistent_rate(0.01)
            .with_omission_bound(16, BitTime::new(100_000))
            .with_inconsistent_bound(2);
        let config = CanelyConfig::default();
        let mut sim = Simulator::new(BusConfig::default(), faults);
        build_cluster(&mut sim, 6, &config);
        sim.schedule_crash(n(4), BitTime::new(300_000));
        sim.run_until(BitTime::new(700_000));

        let survivors = [0u8, 1, 2, 3, 5];
        assert!(
            views_agree(&sim, &survivors),
            "seed {seed}: views diverged: {:?}",
            survivors
                .iter()
                .map(|&id| sim.app::<CanelyStack>(n(id)).view())
                .collect::<Vec<_>>()
        );
        let expected = NodeSet::first_n(6) - NodeSet::singleton(n(4));
        assert_eq!(
            sim.app::<CanelyStack>(n(0)).view(),
            expected,
            "seed {seed}"
        );
    }
}

/// Failure notifications carry the same content at every correct node
/// (consistency of `fd-can.nty`, secured by FDA).
#[test]
fn failure_notifications_identical_everywhere() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    build_cluster(&mut sim, 5, &config);
    sim.schedule_crash(n(2), BitTime::new(300_000));
    sim.run_until(BitTime::new(600_000));
    let mut notifications: Vec<Vec<NodeId>> = Vec::new();
    for id in [0u8, 1, 3, 4] {
        notifications.push(
            sim.app::<CanelyStack>(n(id))
                .events()
                .iter()
                .filter_map(|(_, e)| match e {
                    UpperEvent::FailureNotified(r) => Some(*r),
                    _ => None,
                })
                .collect(),
        );
    }
    assert!(notifications.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(notifications[0], vec![n(2)]);
}

/// Multiple concurrent crashes (up to the assumption's `f`) are all
/// detected and the view converges.
#[test]
fn concurrent_crash_storm() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    build_cluster(&mut sim, 8, &config);
    for (k, victim) in [2u8, 3, 5, 6].iter().enumerate() {
        sim.schedule_crash(n(*victim), BitTime::new(300_000 + k as u64 * 500));
    }
    sim.run_until(BitTime::new(800_000));
    let expected = NodeSet::from_bits(0b1001_0011);
    for id in [0u8, 1, 4, 7] {
        assert_eq!(sim.app::<CanelyStack>(n(id)).view(), expected, "node {id}");
    }
}

/// Join/leave churn: nodes leave and (distinct) nodes join in
/// overlapping cycles; everyone converges.
#[test]
fn join_leave_churn_converges() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..6u8 {
        let mut stack = CanelyStack::new(config.clone());
        if id >= 4 {
            stack = stack.with_leave_at(BitTime::new(300_000 + u64::from(id) * 7_000));
        }
        sim.add_node(n(id), stack);
    }
    for id in 8..11u8 {
        sim.add_node_at(
            n(id),
            CanelyStack::new(config.clone()),
            BitTime::new(320_000 + u64::from(id) * 5_000),
        );
    }
    sim.run_until(BitTime::new(900_000));
    let expected = NodeSet::first_n(4) | NodeSet::from_bits(0b111 << 8);
    for id in [0u8, 1, 2, 3, 8, 9, 10] {
        assert_eq!(sim.app::<CanelyStack>(n(id)).view(), expected, "node {id}");
    }
    // The leavers got their LeftService notification.
    for id in [4u8, 5] {
        assert!(sim
            .app::<CanelyStack>(n(id))
            .events()
            .iter()
            .any(|(_, e)| matches!(e, UpperEvent::LeftService)));
    }
}

/// A node that crashes *while joining* must not pollute the view
/// (the V'j straggler-removal machinery).
#[test]
fn joiner_crash_does_not_poison_view() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    build_cluster(&mut sim, 4, &config);
    let joiner = n(9);
    let t_join = BitTime::new(300_000);
    sim.add_node_at(joiner, CanelyStack::new(config.clone()), t_join);
    // The joiner dies right after issuing its JOIN (before settlement).
    sim.schedule_crash(joiner, t_join + BitTime::new(500));
    sim.run_until(BitTime::new(900_000));
    for id in 0..4u8 {
        let view = sim.app::<CanelyStack>(n(id)).view();
        assert!(
            !view.contains(joiner),
            "node {id}: dead joiner stuck in view {view}"
        );
    }
}

/// Detection latency honours the configured bound across heartbeat
/// periods (the `Th + Ttd` law).
#[test]
fn detection_latency_scales_with_heartbeat_period() {
    let mut previous = BitTime::ZERO;
    for th_ms in [5u64, 10, 20] {
        let config =
            CanelyConfig::default().with_heartbeat_period(BitTime::new(th_ms * 1_000));
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        build_cluster(&mut sim, 4, &config);
        let crash_at = config.join_wait + config.membership_cycle * 3;
        sim.schedule_crash(n(0), crash_at);
        sim.run_until(crash_at + config.membership_cycle * 3);
        let detected = sim
            .app::<CanelyStack>(n(1))
            .events()
            .iter()
            .find_map(|&(t, e)| match e {
                UpperEvent::FailureNotified(r) if r == n(0) => Some(t),
                _ => None,
            })
            .expect("detected");
        let latency = detected - crash_at;
        let bound = config.detection_latency_bound() + BitTime::new(1_000);
        assert!(latency <= bound, "Th={th_ms}ms: {latency} > {bound}");
        assert!(latency >= previous, "latency must grow with Th");
        previous = latency;
    }
}

/// The LCAN2-caveat scenario (inconsistent life-sign, sender crash)
/// from Sec. 6.1, under three different accepter patterns.
#[test]
fn inconsistent_life_sign_scenarios() {
    for accepters_bits in [0b0001u64, 0b0011, 0b0111] {
        let mut faults = FaultPlan::none();
        faults.push_scripted(ScriptedFault {
            matcher: FaultMatcher {
                msg_type: Some(MsgType::Els),
                mid_node: Some(n(3)),
                not_before: BitTime::new(250_000),
                ..FaultMatcher::default()
            },
            effect: FaultEffect::InconsistentOmission {
                accepters: AccepterSpec::Exactly(NodeSet::from_bits(accepters_bits)),
                crash_sender: true,
            },
            count: 1,
        });
        let config = CanelyConfig::default();
        let mut sim = Simulator::new(BusConfig::default(), faults);
        for id in 0..4u8 {
            sim.add_node(n(id), CanelyStack::new(config.clone()));
        }
        sim.run_until(BitTime::new(700_000));
        let expected = NodeSet::first_n(3);
        for id in 0..3u8 {
            assert_eq!(
                sim.app::<CanelyStack>(n(id)).view(),
                expected,
                "accepters {accepters_bits:b}, node {id}"
            );
        }
    }
}

/// Determinism across the whole stack: identical seeds, identical
/// histories (prerequisite for every other test in this suite).
#[test]
fn whole_system_determinism() {
    let run = |seed: u64| {
        let faults = FaultPlan::seeded(seed)
            .with_consistent_rate(0.05)
            .with_inconsistent_rate(0.02);
        let config = CanelyConfig::default();
        let mut sim = Simulator::new(BusConfig::default(), faults);
        build_cluster(&mut sim, 6, &config);
        sim.schedule_crash(n(5), BitTime::new(280_000));
        sim.run_until(BitTime::new(600_000));
        let errors = sim.trace().stats(BitTime::ZERO, BitTime::new(600_000)).errors;
        let events: Vec<_> = (0..5u8)
            .map(|id| sim.app::<CanelyStack>(n(id)).events().to_vec())
            .collect();
        (errors, events)
    };
    assert_eq!(run(42), run(42));
    // Different seeds explore different fault patterns on the wire
    // (the upper-layer histories may coincide — that is the point of
    // fault masking).
    assert_ne!(run(42).0, run(43).0);
}
