//! Full-scale runs: the paper's n = 32 operating point and the
//! stack's 64-node addressing limit.

use can_bus::{BusConfig, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, NodeSet, MAX_NODES};
use canely::{CanelyConfig, CanelyStack, TrafficConfig, UpperEvent};
use integration::n;

/// The paper's population: 32 nodes bootstrap, settle, and absorb a
/// crash with agreed detection.
#[test]
fn thirty_two_nodes_settle_and_detect() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..32u8 {
        let mut stack = CanelyStack::new(config.clone());
        if id % 2 == 0 {
            stack = stack.with_traffic(
                TrafficConfig::periodic(BitTime::new(4_000), 8)
                    .with_offset(BitTime::new(u64::from(id) * 127)),
            );
        }
        sim.add_node(n(id), stack);
    }
    sim.run_until(BitTime::new(250_000));
    for id in 0..32u8 {
        assert_eq!(
            sim.app::<CanelyStack>(n(id)).view(),
            NodeSet::first_n(32),
            "node {id} after bootstrap"
        );
    }
    sim.schedule_crash(n(17), BitTime::new(300_000));
    sim.run_until(BitTime::new(600_000));
    let expected = NodeSet::first_n(32) - NodeSet::singleton(n(17));
    for id in (0..32u8).filter(|&id| id != 17) {
        let stack = sim.app::<CanelyStack>(n(id));
        assert_eq!(stack.view(), expected, "node {id} after crash");
        assert!(stack
            .events()
            .iter()
            .any(|(_, e)| matches!(e, UpperEvent::FailureNotified(r) if *r == n(17))));
    }
}

/// The addressing limit: all 64 node identifiers participate. This
/// exercises the `NodeSet` boundary (bit 63) end to end.
#[test]
fn sixty_four_nodes_bootstrap() {
    // Dimensioning matters at full population: 64 nodes × one frame
    // per Th would exceed the bus at the default Th = 5 ms (64 × 80
    // bits / 5 000 ≈ 102 %). A 20 ms heartbeat keeps the life-sign
    // load at ~6 % and the 48 traffic streams (12 ms < Th, so they
    // ride the implicit-heartbeat mechanism) at ~38 %.
    let config = CanelyConfig::default().with_heartbeat_period(BitTime::new(20_000));
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..MAX_NODES as u8 {
        let mut stack = CanelyStack::new(config.clone());
        if id % 4 != 0 {
            stack = stack.with_traffic(
                TrafficConfig::periodic(BitTime::new(12_000), 4)
                    .with_offset(BitTime::new(u64::from(id) * 61)),
            );
        }
        sim.add_node(n(id), stack);
    }
    sim.run_until(BitTime::new(400_000));
    for id in [0u8, 31, 32, 63] {
        assert_eq!(
            sim.app::<CanelyStack>(n(id)).view(),
            NodeSet::ALL,
            "node {id}"
        );
    }
}

/// Sustained operation: one simulated second at n = 32 with periodic
/// churn keeps every invariant (views agree at the sample points).
#[test]
fn one_second_with_churn() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..24u8 {
        sim.add_node(
            n(id),
            CanelyStack::new(config.clone()).with_traffic(
                TrafficConfig::periodic(BitTime::new(3_000), 8)
                    .with_offset(BitTime::new(u64::from(id) * 113)),
            ),
        );
    }
    // Churn: two crashes, two late joiners.
    sim.schedule_crash(n(5), BitTime::new(300_000));
    sim.schedule_crash(n(6), BitTime::new(550_000));
    sim.add_node_at(n(40), CanelyStack::new(config.clone()), BitTime::new(400_000));
    sim.add_node_at(n(41), CanelyStack::new(config.clone()), BitTime::new(700_000));
    sim.run_until(BitTime::new(1_000_000));

    let expected = (NodeSet::first_n(24) - NodeSet::from_bits(0b110_0000))
        | NodeSet::from_bits(0b11 << 40);
    let survivors: Vec<u8> = (0..24u8).filter(|&id| id != 5 && id != 6).collect();
    for &id in survivors.iter().chain([40u8, 41].iter()) {
        assert_eq!(sim.app::<CanelyStack>(n(id)).view(), expected, "node {id}");
    }
}
