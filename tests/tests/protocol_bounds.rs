//! Measured protocol costs vs the analytic bounds of
//! `canely-analysis::bounds` — "the number of rounds … is bounded and
//! can be known".

use can_bus::{BusConfig, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, MsgType};
use canely::{CanelyConfig, CanelyStack, UpperEvent};
use canely_analysis::ProtocolBounds;
use integration::n;

fn bounds_for(config: &CanelyConfig) -> ProtocolBounds {
    ProtocolBounds {
        heartbeat_period: config.heartbeat_period,
        tltm: BitTime::new(340),
        membership_cycle: config.membership_cycle,
        rha_timeout: config.rha_timeout,
        inconsistent_degree: config.inconsistent_degree,
        max_crash_faults: 4,
    }
}

/// FDA: physical failure-sign frames per crash never exceed the frame
/// bound `2 + j`.
#[test]
fn fda_frames_within_bound() {
    let config = CanelyConfig::default();
    let bounds = bounds_for(&config);
    for nodes in [3u8, 8, 16] {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        for id in 0..nodes {
            sim.add_node(n(id), CanelyStack::new(config.clone()));
        }
        let crash_at = config.join_wait + config.membership_cycle * 3;
        sim.schedule_crash(n(nodes - 1), crash_at);
        sim.run_until(crash_at + config.membership_cycle * 3);
        let fda_frames = sim
            .trace()
            .iter()
            .filter(|r| r.mid().is_some_and(|m| m.msg_type() == MsgType::Fda))
            .filter(|r| !r.errored)
            .count();
        assert!(
            fda_frames as u32 <= bounds.fda_frame_bound(),
            "{nodes} nodes: {fda_frames} FDA frames > bound {}",
            bounds.fda_frame_bound()
        );
        assert!(fda_frames >= 1);
    }
}

/// RHA: RHV signals per settlement stay within the round bound.
#[test]
fn rha_signals_within_round_bound() {
    let config = CanelyConfig::default();
    let bounds = bounds_for(&config);
    for joiners in [1u8, 3] {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        for id in 0..8u8 {
            sim.add_node(n(id), CanelyStack::new(config.clone()));
        }
        let t0 = config.join_wait + config.membership_cycle * 3;
        for k in 0..joiners {
            sim.add_node_at(n(16 + k), CanelyStack::new(config.clone()), t0);
        }
        sim.run_until(t0 + config.membership_cycle * 3);
        let rhv_frames = sim
            .trace()
            .iter()
            .filter(|r| r.start >= t0)
            .filter(|r| r.mid().is_some_and(|m| m.msg_type() == MsgType::Rha))
            .filter(|r| !r.errored)
            .count();
        // One settlement (all joins land in one cycle): the number of
        // distinct RHV waves is bounded by the round bound.
        assert!(
            rhv_frames as u32 <= bounds.rha_round_bound(),
            "{joiners} joiners: {rhv_frames} RHV frames > bound {}",
            bounds.rha_round_bound()
        );
    }
}

/// The end-to-end membership change latency (join request to settled
/// view everywhere) respects the analytic `Tm + Trha` bound.
#[test]
fn membership_change_latency_within_bound() {
    let config = CanelyConfig::default();
    let bounds = bounds_for(&config);
    for phase in 0..4u64 {
        let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
        for id in 0..5u8 {
            sim.add_node(n(id), CanelyStack::new(config.clone()));
        }
        let t0 = config.join_wait + config.membership_cycle * 3 + BitTime::new(phase * 7_300);
        sim.add_node_at(n(9), CanelyStack::new(config.clone()), t0);
        sim.run_until(t0 + config.membership_cycle * 3);
        for id in 0..5u8 {
            let settled = sim
                .app::<CanelyStack>(n(id))
                .membership_history()
                .iter()
                .find(|e| e.view.contains(n(9)))
                .map(|e| e.time)
                .unwrap_or_else(|| panic!("phase {phase}: node {id} never settled"));
            let latency = settled - t0;
            let bound = bounds.membership_change_latency() + BitTime::new(2_000);
            assert!(
                latency <= bound,
                "phase {phase}, node {id}: {latency} > {bound}"
            );
        }
    }
}

/// Detection consistency: every observer receives the failure
/// notification at the same instant (one FDA delivery), so the
/// *spread* across observers is zero — stronger than the latency
/// bound.
#[test]
fn detection_spread_is_zero() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..6u8 {
        sim.add_node(n(id), CanelyStack::new(config.clone()));
    }
    let crash_at = config.join_wait + config.membership_cycle * 3;
    sim.schedule_crash(n(5), crash_at);
    sim.run_until(crash_at + config.membership_cycle * 2);
    let times: Vec<BitTime> = (0..5u8)
        .map(|id| {
            sim.app::<CanelyStack>(n(id))
                .events()
                .iter()
                .find_map(|&(t, e)| match e {
                    UpperEvent::FailureNotified(r) if r == n(5) => Some(t),
                    _ => None,
                })
                .expect("notified")
        })
        .collect();
    assert!(times.windows(2).all(|w| w[0] == w[1]), "{times:?}");
}
