//! Property-based whole-system tests: randomized cluster sizes, crash
//! schedules, churn and fault seeds — the agreement invariants must
//! hold for every generated scenario.

use can_bus::{BusConfig, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, NodeSet};
use canely::{CanelyConfig, CanelyStack, TrafficConfig, UpperEvent};
use integration::n;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    nodes: u8,
    victims: Vec<u8>,
    crash_offsets: Vec<u64>,
    seed: u64,
    traffic_mask: u8,
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (3u8..10, any::<u64>(), any::<u8>())
        .prop_flat_map(|(nodes, seed, traffic_mask)| {
            let victims = prop::collection::vec(0..nodes, 0..=((nodes - 2) as usize).min(3));
            let offsets = prop::collection::vec(0u64..60_000, 3);
            (Just(nodes), victims, offsets, Just(seed), Just(traffic_mask))
        })
        .prop_map(|(nodes, mut victims, crash_offsets, seed, traffic_mask)| {
            victims.sort_unstable();
            victims.dedup();
            Scenario {
                nodes,
                victims,
                crash_offsets,
                seed,
                traffic_mask,
            }
        })
}

fn run_scenario(s: &Scenario) -> Result<(), TestCaseError> {
    let faults = FaultPlan::seeded(s.seed)
        .with_consistent_rate(0.02)
        .with_inconsistent_rate(0.005)
        .with_omission_bound(16, BitTime::new(100_000))
        .with_inconsistent_bound(2);
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), faults);
    for id in 0..s.nodes {
        let mut stack = CanelyStack::new(config.clone());
        if s.traffic_mask & (1 << (id % 8)) != 0 {
            stack = stack.with_traffic(
                TrafficConfig::periodic(BitTime::new(3_500), 4)
                    .with_offset(BitTime::new(u64::from(id) * 101)),
            );
        }
        sim.add_node(n(id), stack);
    }
    let base = BitTime::new(250_000);
    for (k, &victim) in s.victims.iter().enumerate() {
        let offset = s.crash_offsets.get(k).copied().unwrap_or(0);
        sim.schedule_crash(n(victim), base + BitTime::new(offset));
    }
    sim.run_until(BitTime::new(800_000));

    let victims: NodeSet = s.victims.iter().map(|&v| n(v)).collect();
    let expected = NodeSet::first_n(s.nodes as usize) - victims;
    let survivors: Vec<u8> = (0..s.nodes).filter(|id| !s.victims.contains(id)).collect();

    // Invariant 1: every correct node holds the expected view.
    for &id in &survivors {
        let view = sim.app::<CanelyStack>(n(id)).view();
        prop_assert_eq!(
            view,
            expected,
            "node {} view {} != expected {} in {:?}",
            id,
            view,
            expected,
            s
        );
    }
    // Invariant 2: every victim was notified exactly once at each
    // survivor.
    for &id in &survivors {
        let stack = sim.app::<CanelyStack>(n(id));
        for &victim in &s.victims {
            let notifications = stack
                .events()
                .iter()
                .filter(
                    |(_, e)| matches!(e, UpperEvent::FailureNotified(r) if *r == n(victim)),
                )
                .count();
            prop_assert_eq!(
                notifications,
                1,
                "node {} saw {} notifications for victim {} in {:?}",
                id,
                notifications,
                victim,
                s
            );
        }
    }
    // Invariant 3: no correct node was expelled.
    for &id in &survivors {
        prop_assert!(
            !sim.app::<CanelyStack>(n(id)).is_out_of_service(),
            "correct node {} expelled in {:?}",
            id,
            s
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn agreement_invariants_hold_for_random_scenarios(s in arb_scenario()) {
        run_scenario(&s)?;
    }
}

/// Regression corpus: scenarios that once looked suspicious, pinned
/// as plain tests.
#[test]
fn pinned_scenarios() {
    for s in [
        Scenario {
            nodes: 3,
            victims: vec![0],
            crash_offsets: vec![0, 0, 0],
            seed: 0,
            traffic_mask: 0xFF,
        },
        Scenario {
            nodes: 9,
            victims: vec![0, 4, 8],
            crash_offsets: vec![0, 30_000, 59_999],
            seed: 1234,
            traffic_mask: 0,
        },
        Scenario {
            nodes: 4,
            victims: vec![],
            crash_offsets: vec![0, 0, 0],
            seed: u64::MAX,
            traffic_mask: 0b1010,
        },
    ] {
        run_scenario(&s).unwrap_or_else(|e| panic!("pinned scenario {s:?} failed: {e}"));
    }
}
