//! Node restart and reintegration.
//!
//! The membership design assumes "any node removed from Vs, in the
//! sequence of a withdrawn request or after the failure of the node,
//! does not initiate a reintegration attempt before a period much
//! higher than Tm has elapsed" (Sec. 6.4). These tests exercise both
//! the compliant regime (clean reintegration with fresh state) and
//! view-sequence consistency across the whole lifecycle.

use can_bus::{BusConfig, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, NodeSet};
use canely::{CanelyConfig, CanelyStack, UpperEvent};
use integration::{assert_view_sequences_consistent, n};

/// Crash → reboot well after the failure settled → clean rejoin.
#[test]
fn compliant_reintegration_rejoins_cleanly() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..4u8 {
        sim.add_node(n(id), CanelyStack::new(config.clone()));
    }
    let crash_at = BitTime::new(250_000);
    sim.schedule_crash(n(2), crash_at);
    // Reintegration after ~8 cycles — "much higher than Tm".
    let restart_at = crash_at + config.membership_cycle * 8;
    sim.schedule_restart(n(2), restart_at, CanelyStack::new(config.clone()));
    sim.run_until(BitTime::new(900_000));

    // Everyone — the rebooted node included — holds the full view.
    for id in 0..4u8 {
        assert_eq!(
            sim.app::<CanelyStack>(n(id)).view(),
            NodeSet::first_n(4),
            "node {id}"
        );
    }
    // The survivors observed: full → without 2 → full again.
    let views: Vec<NodeSet> = sim
        .app::<CanelyStack>(n(0))
        .membership_history()
        .iter()
        .map(|e| e.view)
        .collect();
    assert_eq!(
        views,
        vec![
            NodeSet::first_n(4),
            NodeSet::from_bits(0b1011),
            NodeSet::first_n(4),
        ]
    );
    assert_view_sequences_consistent(&sim, &[0, 1, 3]);
}

/// The rebooted node starts from scratch: its event log begins with
/// its own (re)join, not stale pre-crash state.
#[test]
fn restart_loses_volatile_state() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..3u8 {
        sim.add_node(n(id), CanelyStack::new(config.clone()));
    }
    sim.schedule_crash(n(1), BitTime::new(250_000));
    sim.schedule_restart(n(1), BitTime::new(600_000), CanelyStack::new(config.clone()));
    sim.run_until(BitTime::new(900_000));
    let rebooted = sim.app::<CanelyStack>(n(1));
    // First recorded event after reboot is the membership change that
    // integrated it — nothing from the pre-crash epoch.
    let first = rebooted.events().first().expect("rejoined");
    assert!(first.0 > BitTime::new(600_000), "stale pre-crash event kept");
    assert!(matches!(
        first.1,
        UpperEvent::MembershipChange { .. }
    ));
}

/// Repeated crash/restart cycles of the same node converge every time.
#[test]
fn repeated_power_cycles() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..3u8 {
        sim.add_node(n(id), CanelyStack::new(config.clone()));
    }
    for round in 0..3u64 {
        let base = BitTime::new(300_000 + round * 600_000);
        sim.schedule_crash(n(2), base);
        sim.schedule_restart(
            n(2),
            base + BitTime::new(300_000),
            CanelyStack::new(config.clone()),
        );
    }
    sim.run_until(BitTime::new(2_100_000));
    for id in 0..3u8 {
        assert_eq!(
            sim.app::<CanelyStack>(n(id)).view(),
            NodeSet::first_n(3),
            "node {id} after three power cycles"
        );
    }
    // Survivors saw exactly three failure notifications for node 2.
    let failures = sim
        .app::<CanelyStack>(n(0))
        .events()
        .iter()
        .filter(|(_, e)| matches!(e, UpperEvent::FailureNotified(r) if *r == n(2)))
        .count();
    assert_eq!(failures, 3);
    assert_view_sequences_consistent(&sim, &[0, 1]);
}

/// Restarting a *live* node is a power cycle: fail-silent crash, then
/// fresh boot — the membership sees a failure followed by a rejoin.
#[test]
fn power_cycle_of_live_node() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..3u8 {
        sim.add_node(n(id), CanelyStack::new(config.clone()));
    }
    sim.schedule_restart(n(2), BitTime::new(400_000), CanelyStack::new(config.clone()));
    sim.run_until(BitTime::new(900_000));
    for id in 0..3u8 {
        assert_eq!(sim.app::<CanelyStack>(n(id)).view(), NodeSet::first_n(3));
    }
    assert!(sim
        .app::<CanelyStack>(n(0))
        .events()
        .iter()
        .any(|(_, e)| matches!(e, UpperEvent::FailureNotified(r) if *r == n(2))));
}

/// View sequences stay consistent through a mixed lifecycle (crash,
/// restart, join, leave) — the sequence-level agreement property.
#[test]
fn lifecycle_view_sequences_consistent() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..5u8 {
        let mut stack = CanelyStack::new(config.clone());
        if id == 4 {
            stack = stack.with_leave_at(BitTime::new(500_000));
        }
        sim.add_node(n(id), stack);
    }
    sim.schedule_crash(n(3), BitTime::new(300_000));
    sim.schedule_restart(n(3), BitTime::new(700_000), CanelyStack::new(config.clone()));
    sim.add_node_at(n(9), CanelyStack::new(config.clone()), BitTime::new(900_000));
    sim.run_until(BitTime::new(1_400_000));

    let expected = NodeSet::from_bits(0b10_0000_1111);
    for id in [0u8, 1, 2, 3, 9] {
        assert_eq!(sim.app::<CanelyStack>(n(id)).view(), expected, "node {id}");
    }
    assert_view_sequences_consistent(&sim, &[0, 1, 2]);
}
