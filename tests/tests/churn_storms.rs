//! Hard concurrency: joins, leaves and crashes landing in the *same*
//! membership cycle, with and without network noise. The settlements
//! must still converge to the same view everywhere.

use can_bus::{BusConfig, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, NodeSet};
use canely::{CanelyConfig, CanelyStack, TrafficConfig, UpperEvent};
use integration::n;

/// Join, leave and crash all within one `Tm` window.
#[test]
fn join_leave_crash_in_one_cycle() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..5u8 {
        let mut stack = CanelyStack::new(config.clone());
        if id == 4 {
            // Leaves right when the churn window opens.
            stack = stack.with_leave_at(BitTime::new(300_000));
        }
        sim.add_node(n(id), stack);
    }
    // A joiner powers on within the same cycle…
    sim.add_node_at(n(8), CanelyStack::new(config.clone()), BitTime::new(302_000));
    // …and another member crashes within it too.
    sim.schedule_crash(n(3), BitTime::new(305_000));
    sim.run_until(BitTime::new(800_000));

    let expected = NodeSet::from_bits(0b1_0000_0111);
    for id in [0u8, 1, 2, 8] {
        assert_eq!(sim.app::<CanelyStack>(n(id)).view(), expected, "node {id}");
    }
    // The leaver completed cleanly despite the concurrent churn.
    assert!(sim
        .app::<CanelyStack>(n(4))
        .events()
        .iter()
        .any(|(_, e)| matches!(e, UpperEvent::LeftService)));
}

/// The same single-cycle churn under stochastic omissions, across
/// seeds.
#[test]
fn single_cycle_churn_under_noise() {
    for seed in 0..8u64 {
        let faults = FaultPlan::seeded(seed)
            .with_consistent_rate(0.04)
            .with_inconsistent_rate(0.01)
            .with_omission_bound(16, BitTime::new(100_000))
            .with_inconsistent_bound(2);
        let config = CanelyConfig::default();
        let mut sim = Simulator::new(BusConfig::default(), faults);
        for id in 0..5u8 {
            let mut stack = CanelyStack::new(config.clone());
            if id % 2 == 0 {
                stack = stack.with_traffic(
                    TrafficConfig::periodic(BitTime::new(3_000), 4)
                        .with_offset(BitTime::new(u64::from(id) * 173)),
                );
            }
            if id == 4 {
                stack = stack.with_leave_at(BitTime::new(300_000));
            }
            sim.add_node(n(id), stack);
        }
        sim.add_node_at(n(8), CanelyStack::new(config.clone()), BitTime::new(301_000));
        sim.schedule_crash(n(3), BitTime::new(304_000));
        sim.run_until(BitTime::new(900_000));

        let expected = NodeSet::from_bits(0b1_0000_0111);
        for id in [0u8, 1, 2, 8] {
            assert_eq!(
                sim.app::<CanelyStack>(n(id)).view(),
                expected,
                "seed {seed}, node {id}"
            );
        }
    }
}

/// Back-to-back crashes of consecutive cycle leaders: the cycle keeps
/// rolling because the cycle timer runs at every member.
#[test]
fn cascading_crashes_do_not_stall_the_cycle() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..6u8 {
        sim.add_node(n(id), CanelyStack::new(config.clone()));
    }
    // Crash a node roughly every cycle.
    for (k, victim) in [0u8, 1, 2, 3].iter().enumerate() {
        sim.schedule_crash(
            n(*victim),
            BitTime::new(250_000 + k as u64 * 35_000),
        );
    }
    sim.run_until(BitTime::new(900_000));
    let expected = NodeSet::from_bits(0b11_0000);
    for id in [4u8, 5] {
        let stack = sim.app::<CanelyStack>(n(id));
        assert_eq!(stack.view(), expected, "node {id}");
        // All four failures notified, in crash order.
        let notified: Vec<u8> = stack
            .events()
            .iter()
            .filter_map(|(_, e)| match e {
                UpperEvent::FailureNotified(r) => Some(r.as_u8()),
                _ => None,
            })
            .collect();
        assert_eq!(notified, vec![0, 1, 2, 3], "node {id}");
    }
}

/// A node that leaves and a node that joins with the *same identifier
/// slot* across epochs: the late join of a fresh node reusing history
/// must not resurrect stale FDA state.
#[test]
fn identifier_reuse_after_leave() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());
    for id in 0..4u8 {
        let mut stack = CanelyStack::new(config.clone());
        if id == 3 {
            stack = stack.with_leave_at(BitTime::new(250_000));
        }
        sim.add_node(n(id), stack);
    }
    sim.run_until(BitTime::new(400_000));
    assert_eq!(
        sim.app::<CanelyStack>(n(0)).view(),
        NodeSet::first_n(3),
        "leave settled"
    );
    // A *new* node with identifier 9 joins (identifier 3 cannot be
    // reused in-simulation; the point is that the view can grow again
    // after shrinking, with surveillance rebuilt from scratch).
    sim.add_node_at(n(9), CanelyStack::new(config.clone()), BitTime::new(420_000));
    sim.run_until(BitTime::new(800_000));
    let expected = NodeSet::first_n(3) | NodeSet::singleton(n(9));
    for id in [0u8, 1, 2, 9] {
        let stack = sim.app::<CanelyStack>(n(id));
        assert_eq!(stack.view(), expected, "node {id}");
        assert_eq!(stack.monitored(), expected, "node {id} surveillance");
    }
}
