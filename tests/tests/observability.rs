//! Whole-stack observability tests: the lifecycle scenario must
//! produce a deterministic, correctly-ordered structured trace.
//!
//! Two properties are pinned here:
//!
//! * **Golden trace** — the crash of node 2 in
//!   `scenarios/lifecycle.canely` produces an exact event-kind
//!   sequence at a fixed observer: crash marker, suspicion, FDA
//!   dissemination, agreed notification, view change. Any protocol
//!   reordering breaks this test on purpose.
//! * **Determinism** — two runs of the same scenario export
//!   byte-identical merged JSONL traces.

use can_types::BitTime;
use canely::ProtocolEvent;
use canely_cli::scenario::Scenario;
use integration::n;

fn lifecycle() -> Scenario {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../scenarios/lifecycle.canely");
    let text = std::fs::read_to_string(path).expect("scenario file");
    Scenario::parse(&text).expect("scenario parses")
}

/// The exact chain of events around the scripted crash of node 2 at
/// 300 ms, as seen by observer node 0 (plus the global crash marker).
#[test]
fn golden_trace_crash_to_view_change() {
    let (_sim, _until, log) = lifecycle().run_with_obs().expect("scenario runs");

    let watched = [
        "node.crashed",
        "fd.suspect",
        "fda.invoked",
        "fda.sign.tx",
        "fda.sign.rx",
        "fda.delivered",
        "fd.notified",
        "view.changed",
    ];
    let window = BitTime::new(300_000)..BitTime::new(420_000);
    let chain: Vec<String> = log
        .events()
        .iter()
        .filter(|e| window.contains(&e.time))
        .filter(|e| e.node == n(0) || matches!(e.event, ProtocolEvent::NodeCrashed))
        .map(|e| e.event.kind().to_string())
        .filter(|k| watched.contains(&k.as_str()))
        .collect();

    assert_eq!(
        chain,
        [
            "node.crashed", // scripted crash marker for node 2
            "fd.suspect",   // node 0's surveillance timer fires
            "fda.invoked",  // FD hands the suspect to the FDA
            "fda.sign.tx",  // node 0 requests the failure sign
            "fda.sign.rx",  // ... and observes the sign on the bus
            "fda.delivered", // eager diffusion settles the failure
            "fd.notified",  // upper layer notified of agreed failure
            "view.changed", // membership installs the shrunken view
            "fda.sign.rx",  // late duplicate sign from a peer's diffusion
        ],
        "unexpected crash-detection chain"
    );

    // The chain must precede the restart of node 2 (scripted 800 ms)
    // and the final view must reflect the whole lifecycle.
    let restart_at = log
        .events()
        .iter()
        .find(|e| matches!(e.event, ProtocolEvent::NodeRestarted))
        .map(|e| e.time)
        .expect("restart marker present");
    assert_eq!(restart_at, BitTime::new(800_000));
}

/// The exported merged trace is time-ordered, and the scripted fault
/// markers appear exactly as scheduled. (The raw in-memory log is in
/// recording order — markers are seeded before the run — so ordering
/// is a property of the export, not of `events()`.)
#[test]
fn trace_is_time_ordered_with_markers() {
    let (sim, until, log) = lifecycle().run_with_obs().expect("scenario runs");
    let events = log.events();
    assert!(!events.is_empty());
    let times: Vec<u64> = log
        .export_jsonl(Some(sim.trace()))
        .lines()
        .map(|line| {
            line.split("\"t\":")
                .nth(1)
                .and_then(|s| s.split(',').next())
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("no t in {line}"))
        })
        .collect();
    assert!(times.windows(2).all(|w| w[0] <= w[1]), "export out of order");
    assert!(events.iter().all(|e| e.time <= until));
    let crashes: Vec<_> = events
        .iter()
        .filter(|e| matches!(e.event, ProtocolEvent::NodeCrashed))
        .collect();
    assert_eq!(crashes.len(), 1);
    assert_eq!(crashes[0].time, BitTime::new(300_000));
    assert_eq!(crashes[0].node, n(2));
}

/// Two identical runs export byte-identical merged JSONL documents —
/// the determinism guarantee documented in `docs/TRACE_SCHEMA.md`.
#[test]
fn identical_runs_export_identical_jsonl() {
    let scenario = lifecycle();
    let (sim_a, _, log_a) = scenario.run_with_obs().expect("first run");
    let (sim_b, _, log_b) = scenario.run_with_obs().expect("second run");
    let a = log_a.export_jsonl(Some(sim_a.trace()));
    let b = log_b.export_jsonl(Some(sim_b.trace()));
    assert!(!a.is_empty());
    assert_eq!(a, b, "two runs of the same scenario diverged");
    // Both protocol and bus records are present in the merge.
    assert!(a.contains("\"kind\":\"bus.tx\""));
    assert!(a.contains("\"kind\":\"view.changed\""));
}
