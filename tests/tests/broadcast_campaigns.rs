//! Seeded fault campaigns over the reliable broadcast suite:
//! EDCAN/RELCAN keep exactly-once delivery, TOTCAN keeps total order
//! and atomicity, across stochastic omission noise.

use can_bus::{BusConfig, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, Payload};
use canely_broadcast::common::{MsgKey, ScheduledSend};
use canely_broadcast::{Edcan, Relcan, Totcan};
use integration::n;

fn schedule(node: u8, count: u64, spacing: u64) -> Vec<ScheduledSend> {
    (0..count)
        .map(|k| {
            ScheduledSend::new(
                BitTime::new(1_000 + k * spacing + u64::from(node) * 137),
                Payload::from_slice(&[node, k as u8]).unwrap(),
            )
        })
        .collect()
}

#[test]
fn edcan_exactly_once_under_noise() {
    for seed in 0..10u64 {
        let faults = FaultPlan::seeded(seed)
            .with_consistent_rate(0.05)
            .with_inconsistent_rate(0.02)
            .with_omission_bound(16, BitTime::new(50_000))
            .with_inconsistent_bound(2);
        let mut sim = Simulator::new(BusConfig::default(), faults);
        for id in 0..3u8 {
            sim.add_node(n(id), Edcan::new().with_schedule(schedule(id, 10, 4_000)));
        }
        sim.add_node(n(3), Edcan::new());
        sim.run_until(BitTime::new(200_000));
        for id in 0..4u8 {
            let deliveries = sim.app::<Edcan>(n(id)).deliveries();
            assert_eq!(deliveries.len(), 30, "seed {seed}, node {id}");
            // Exactly once: all keys distinct.
            let mut keys: Vec<MsgKey> = deliveries.iter().map(|d| d.key).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(keys.len(), 30, "seed {seed}, node {id}: duplicates");
        }
    }
}

#[test]
fn relcan_exactly_once_under_noise() {
    for seed in 0..10u64 {
        let faults = FaultPlan::seeded(seed)
            .with_consistent_rate(0.05)
            .with_inconsistent_rate(0.02)
            .with_omission_bound(16, BitTime::new(50_000))
            .with_inconsistent_bound(2);
        let mut sim = Simulator::new(BusConfig::default(), faults);
        let timeout = BitTime::new(3_000);
        for id in 0..3u8 {
            sim.add_node(
                n(id),
                Relcan::new(timeout).with_schedule(schedule(id, 10, 4_000)),
            );
        }
        sim.add_node(n(3), Relcan::new(timeout));
        sim.run_until(BitTime::new(200_000));
        for id in 0..4u8 {
            let deliveries = sim.app::<Relcan>(n(id)).deliveries();
            assert_eq!(deliveries.len(), 30, "seed {seed}, node {id}");
        }
    }
}

#[test]
fn totcan_total_order_under_noise() {
    for seed in 0..10u64 {
        let faults = FaultPlan::seeded(seed)
            .with_consistent_rate(0.05)
            .with_inconsistent_rate(0.02)
            .with_omission_bound(16, BitTime::new(50_000))
            .with_inconsistent_bound(2);
        let mut sim = Simulator::new(BusConfig::default(), faults);
        let abort = BitTime::new(8_000);
        for id in 0..3u8 {
            sim.add_node(
                n(id),
                Totcan::new(abort).with_schedule(schedule(id, 8, 5_000)),
            );
        }
        sim.add_node(n(3), Totcan::new(abort));
        sim.run_until(BitTime::new(250_000));

        let reference: Vec<MsgKey> = sim
            .app::<Totcan>(n(3))
            .deliveries()
            .iter()
            .map(|d| d.key)
            .collect();
        assert_eq!(reference.len(), 24, "seed {seed}: all messages accepted");
        for id in 0..3u8 {
            let order: Vec<MsgKey> = sim
                .app::<Totcan>(n(id))
                .deliveries()
                .iter()
                .map(|d| d.key)
                .collect();
            assert_eq!(order, reference, "seed {seed}, node {id}: order differs");
        }
    }
}

/// Mixed suite under noise: all three protocols coexisting with their
/// guarantees intact (distinct type codes keep their traffic apart).
#[test]
fn mixed_suite_campaign() {
    for seed in [3u64, 17, 40] {
        let faults = FaultPlan::seeded(seed)
            .with_consistent_rate(0.04)
            .with_omission_bound(16, BitTime::new(50_000));
        let mut sim = Simulator::new(BusConfig::default(), faults);
        sim.add_node(n(0), Edcan::new().with_schedule(schedule(0, 6, 6_000)));
        sim.add_node(
            n(1),
            Relcan::new(BitTime::new(3_000)).with_schedule(schedule(1, 6, 6_000)),
        );
        sim.add_node(
            n(2),
            Totcan::new(BitTime::new(8_000)).with_schedule(schedule(2, 6, 6_000)),
        );
        sim.add_node(n(4), Edcan::new());
        sim.add_node(n(5), Relcan::new(BitTime::new(3_000)));
        sim.add_node(n(6), Totcan::new(BitTime::new(8_000)));
        sim.run_until(BitTime::new(200_000));
        assert_eq!(sim.app::<Edcan>(n(4)).deliveries().len(), 6, "seed {seed}");
        assert_eq!(sim.app::<Relcan>(n(5)).deliveries().len(), 6, "seed {seed}");
        assert_eq!(sim.app::<Totcan>(n(6)).deliveries().len(), 6, "seed {seed}");
    }
}
