//! Measured inaccessibility vs the analytic bounds of Fig. 11.
//!
//! The fault injector enforces the paper's bounded omission degree;
//! the measured worst inaccessibility episode on the wire must stay
//! within the closed-form `Tina` upper bound of [22] for the same
//! omission degree.

use can_bus::{BusConfig, FaultEffect, FaultMatcher, FaultPlan, ScriptedFault};
use can_controller::Simulator;
use can_types::BitTime;
use canely::{CanelyConfig, CanelyStack, TrafficConfig};
use canely_analysis::{InaccessibilityModel, Scenario};
use integration::n;

fn busy_cluster(sim: &mut Simulator, count: u8) {
    let config = CanelyConfig::default();
    for id in 0..count {
        sim.add_node(
            n(id),
            CanelyStack::new(config.clone()).with_traffic(
                TrafficConfig::periodic(BitTime::new(2_000), 8)
                    .with_offset(BitTime::new(u64::from(id) * 311)),
            ),
        );
    }
}

/// A scripted error burst produces one inaccessibility episode whose
/// duration is within the analytic per-omission budget.
#[test]
fn scripted_burst_measured_within_analytic_budget() {
    for burst in [1u32, 4, 8, 12] {
        let mut faults = FaultPlan::none();
        faults.push_scripted(ScriptedFault {
            matcher: FaultMatcher {
                not_before: BitTime::new(200_000),
                ..FaultMatcher::default()
            },
            effect: FaultEffect::ConsistentOmission,
            count: burst,
        });
        let mut sim = Simulator::new(BusConfig::default(), faults);
        busy_cluster(&mut sim, 4);
        sim.run_until(BitTime::new(400_000));

        let model = InaccessibilityModel::canely();
        let analytic = model.duration(Scenario::Burst { omissions: burst });
        let measured = sim
            .trace()
            .worst_inaccessibility()
            .expect("burst must show up as an episode");
        assert!(
            measured <= analytic,
            "burst {burst}: measured {measured} > analytic {analytic}"
        );
        // And the analytic bound is tight-ish: within 2x.
        assert!(
            measured * 2 >= analytic,
            "burst {burst}: measured {measured} implausibly small vs {analytic}"
        );
    }
}

/// Under stochastic omissions bounded by the CANELy omission degree,
/// the measured worst inaccessibility stays below the Fig. 11 upper
/// bound of 2160 bit-times.
#[test]
fn stochastic_campaign_respects_fig11_canely_bound() {
    let model = InaccessibilityModel::canely();
    for seed in 0..8u64 {
        let faults = FaultPlan::seeded(seed)
            .with_consistent_rate(0.10)
            .with_omission_bound(model.omission_degree(), BitTime::new(50_000));
        let mut sim = Simulator::new(BusConfig::default(), faults);
        busy_cluster(&mut sim, 4);
        sim.run_until(BitTime::new(1_000_000));
        if let Some(worst) = sim.trace().worst_inaccessibility() {
            assert!(
                worst <= model.upper_bound(),
                "seed {seed}: measured {worst} exceeds Tina {}",
                model.upper_bound()
            );
        }
    }
}

/// Traffic keeps flowing after an inaccessibility episode: the bounded
/// transmission delay (MCAN4) includes Tina, and delivery resumes.
#[test]
fn service_resumes_after_episode() {
    let mut faults = FaultPlan::none();
    faults.push_scripted(ScriptedFault {
        matcher: FaultMatcher {
            not_before: BitTime::new(200_000),
            ..FaultMatcher::default()
        },
        effect: FaultEffect::ConsistentOmission,
        count: 12,
    });
    let mut sim = Simulator::new(BusConfig::default(), faults);
    busy_cluster(&mut sim, 4);
    sim.run_until(BitTime::new(800_000));
    // No spurious failure notifications despite the burst: the
    // surveillance margin Ttd covers the worst-case inaccessibility.
    for id in 0..4u8 {
        let stack = sim.app::<CanelyStack>(n(id));
        assert_eq!(stack.view().len(), 4, "node {id} view intact");
        assert!(
            !stack
                .events()
                .iter()
                .any(|(_, e)| matches!(e, canely::UpperEvent::FailureNotified(_))),
            "node {id}: burst must not look like a crash"
        );
    }
}

/// Explicit inaccessibility periods (injected via the fault plan) also
/// stay invisible to the membership as long as they are shorter than
/// the surveillance margin.
#[test]
fn short_injected_inaccessibility_is_transparent() {
    let mut faults = FaultPlan::none();
    // 2 ms of bus hold — just under the default Ttd of 2.5 ms.
    faults.push_inaccessibility(BitTime::new(250_000), BitTime::new(252_000));
    let mut sim = Simulator::new(BusConfig::default(), faults);
    busy_cluster(&mut sim, 4);
    sim.run_until(BitTime::new(600_000));
    for id in 0..4u8 {
        assert_eq!(sim.app::<CanelyStack>(n(id)).view().len(), 4);
    }
}

/// An inaccessibility period *longer* than the surveillance margin
/// causes false suspicions — quantifying why Ttd must include Tina.
#[test]
fn overlong_inaccessibility_breaks_the_margin() {
    let mut faults = FaultPlan::none();
    // 20 ms of bus hold — way past Th + Ttd = 7.5 ms.
    faults.push_inaccessibility(BitTime::new(250_000), BitTime::new(270_000));
    let mut sim = Simulator::new(BusConfig::default(), faults);
    busy_cluster(&mut sim, 4);
    sim.run_until(BitTime::new(600_000));
    let spurious = (0..4u8)
        .filter(|&id| {
            sim.app::<CanelyStack>(n(id))
                .events()
                .iter()
                .any(|(_, e)| matches!(e, canely::UpperEvent::FailureNotified(_)))
        })
        .count();
    assert!(
        spurious > 0,
        "an inaccessibility beyond the margin must surface as suspicions"
    );
}
