//! Quickstart: the CANELy membership service in thirty lines.
//!
//! Five nodes power on, join, and agree on a view; node 3 crashes;
//! the failure detection + FDA machinery notifies every survivor
//! consistently and the view is purged.
//!
//! Run with `cargo run --release -p examples --bin quickstart`.

use can_bus::{BusConfig, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, NodeId};
use canely::{CanelyConfig, CanelyStack, UpperEvent};
use examples::{fmt_ms, print_history};

fn main() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());

    // Five nodes, all joining at power-on.
    for id in 0..5 {
        sim.add_node(NodeId::new(id), CanelyStack::new(config.clone()));
    }

    // Let the cluster bootstrap (join wait + a couple of cycles)…
    sim.run_until(BitTime::new(200_000));
    println!(
        "after bootstrap: view at node 0 = {}",
        sim.app::<CanelyStack>(NodeId::new(0)).view()
    );

    // …then crash node 3.
    let crash_at = BitTime::new(250_000);
    sim.schedule_crash(NodeId::new(3), crash_at);
    sim.run_until(BitTime::new(500_000));

    println!("node 3 crashed at t={}", fmt_ms(crash_at));
    for id in [0u8, 1, 2, 4] {
        let stack = sim.app::<CanelyStack>(NodeId::new(id));
        let detected = stack
            .events()
            .iter()
            .find(|(_, e)| matches!(e, UpperEvent::FailureNotified(r) if r.as_u8() == 3))
            .map(|&(t, _)| t)
            .expect("failure agreed at every correct node");
        println!(
            "node {id}: detected at t={} (+{}), final view = {}",
            fmt_ms(detected),
            fmt_ms(detected - crash_at),
            stack.view()
        );
    }
    print_history("node 0", &sim, NodeId::new(0));
}
