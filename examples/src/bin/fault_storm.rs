//! Fault storm: the membership service under sustained network
//! faults — stochastic consistent *and* inconsistent omissions plus a
//! scripted inconsistent-life-sign-with-sender-crash, the hardest
//! scenario of Sec. 6.1 ("the delivery of node activity signals cannot
//! be guaranteed when a given message transmission is affected by an
//! inconsistent omission error and the sender fails before completing
//! the transmission").
//!
//! The run demonstrates the paper's claims: every correct node gets
//! the same failure notifications and converges to the same view, and
//! the bounded omission degree keeps the detection latency bounded.
//!
//! Run with `cargo run --release -p examples --bin fault_storm`.

use can_bus::{
    AccepterSpec, BusConfig, FaultEffect, FaultMatcher, FaultPlan, ScriptedFault,
};
use can_controller::Simulator;
use can_types::{BitTime, MsgType, NodeId, NodeSet};
use canely::{CanelyConfig, CanelyStack, TrafficConfig, UpperEvent};
use examples::fmt_ms;

const N: u8 = 8;

fn main() {
    let mut agreed_runs = 0;
    for seed in 0..10u64 {
        if run_storm(seed) {
            agreed_runs += 1;
        }
    }
    println!("\n{agreed_runs}/10 seeded storms ended in full agreement ✓");
    assert_eq!(agreed_runs, 10, "agreement must survive every storm");
}

/// Returns whether all correct nodes agreed on everything.
fn run_storm(seed: u64) -> bool {
    let mut faults = FaultPlan::seeded(seed)
        .with_consistent_rate(0.02)
        .with_inconsistent_rate(0.005)
        .with_omission_bound(16, BitTime::new(100_000))
        .with_inconsistent_bound(2);
    // The nightmare scenario, scripted deterministically on top of the
    // stochastic noise: node 5's life-sign reaches exactly one node,
    // then node 5 dies.
    faults.push_scripted(ScriptedFault {
        matcher: FaultMatcher {
            msg_type: Some(MsgType::Els),
            mid_node: Some(NodeId::new(5)),
            not_before: BitTime::new(300_000),
            ..FaultMatcher::default()
        },
        effect: FaultEffect::InconsistentOmission {
            accepters: AccepterSpec::Exactly(NodeSet::singleton(NodeId::new(0))),
            crash_sender: true,
        },
        count: 1,
    });

    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), faults);
    for id in 0..N {
        let mut stack = CanelyStack::new(config.clone());
        if id % 2 == 0 {
            stack = stack.with_traffic(
                TrafficConfig::periodic(BitTime::new(4_000), 4)
                    .with_offset(BitTime::new(u64::from(id) * 211)),
            );
        }
        sim.add_node(NodeId::new(id), stack);
    }
    // A second, plain crash later in the run.
    sim.schedule_crash(NodeId::new(6), BitTime::new(450_000));
    sim.run_until(BitTime::new(900_000));

    let stats = sim.trace().stats(BitTime::ZERO, BitTime::new(900_000));
    let survivors: Vec<u8> = (0..N).filter(|&id| id != 5 && id != 6).collect();
    let reference_view = sim.app::<CanelyStack>(NodeId::new(0)).view();
    let expected = NodeSet::first_n(N as usize)
        - NodeSet::singleton(NodeId::new(5))
        - NodeSet::singleton(NodeId::new(6));

    let mut agreed = reference_view == expected;
    let mut latencies = Vec::new();
    for &id in &survivors {
        let stack = sim.app::<CanelyStack>(NodeId::new(id));
        agreed &= stack.view() == reference_view;
        for victim in [5u8, 6] {
            if let Some(&(t, _)) = stack.events().iter().find(
                |(_, e)| matches!(e, UpperEvent::FailureNotified(r) if r.as_u8() == victim),
            ) {
                latencies.push(t);
            } else {
                agreed = false;
            }
        }
    }
    let worst = latencies.iter().max().copied().unwrap_or(BitTime::ZERO);
    println!(
        "seed {seed:>2}: {} bus transactions, {} errored ({:.1}%), \
         final view {} at all {} survivors: {} (last notification {})",
        stats.transactions,
        stats.errors,
        stats.errors as f64 / stats.transactions.max(1) as f64 * 100.0,
        reference_view,
        survivors.len(),
        if agreed { "AGREED" } else { "DISAGREED" },
        fmt_ms(worst),
    );
    agreed
}
