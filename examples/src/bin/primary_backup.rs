//! Primary/backup fail-over driven by consistent group views.
//!
//! The classic use of a membership service in control systems: a
//! replicated controller where the *primary* is chosen
//! deterministically from the group view (lowest identifier). Because
//! the CANELy failure notifications are agreed, every replica and
//! every observer switches to the same new primary at the same
//! notification instant — no election protocol needed.
//!
//! Scenario: three controller replicas (nodes 0, 1, 2) in process
//! group 1, plus two sensor nodes. The primary crashes twice; the
//! fail-over chain 0 → 1 → 2 is observed identically everywhere.
//!
//! Run with `cargo run --release -p examples --bin primary_backup`.

use can_bus::{BusConfig, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, NodeId, NodeSet};
use canely::{CanelyConfig, TrafficConfig};
use canely_groups::{GroupId, GroupStack};
use examples::fmt_ms;

const CONTROLLERS: GroupId = GroupId::new(1);

/// The primary of a group view: its lowest-identifier member.
fn primary(view: NodeSet) -> Option<NodeId> {
    view.iter().next()
}

fn main() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());

    // Three controller replicas.
    for id in 0..3u8 {
        sim.add_node(
            NodeId::new(id),
            GroupStack::new(config.clone())
                .with_group_join_at(CONTROLLERS, BitTime::new(150_000)),
        );
    }
    // Two sensor nodes (observers of the controller group).
    for id in 3..5u8 {
        sim.add_node(
            NodeId::new(id),
            GroupStack::new(config.clone()).with_traffic(
                TrafficConfig::periodic(BitTime::new(4_000), 4)
                    .with_offset(BitTime::new(u64::from(id) * 101)),
            ),
        );
    }

    // The primary (node 0) crashes; later its successor (node 1) too.
    sim.schedule_crash(NodeId::new(0), BitTime::new(300_000));
    sim.schedule_crash(NodeId::new(1), BitTime::new(500_000));
    sim.run_until(BitTime::new(800_000));

    // Reconstruct the fail-over chain each node observed from its
    // group-event history.
    println!("primary fail-over chain as observed at each node:");
    let mut chains = Vec::new();
    for id in [2u8, 3, 4] {
        let stack = sim.app::<GroupStack>(NodeId::new(id));
        let mut chain: Vec<(BitTime, Option<NodeId>)> = Vec::new();
        for event in stack.groups().events() {
            if event.group == CONTROLLERS {
                let p = primary(event.view);
                if chain.last().map(|&(_, last)| last) != Some(p) {
                    chain.push((event.time, p));
                }
            }
        }
        let rendered: Vec<String> = chain
            .iter()
            .map(|&(t, p)| {
                format!(
                    "{}@{}",
                    p.map_or("-".to_string(), |n| n.to_string()),
                    fmt_ms(t)
                )
            })
            .collect();
        println!("  node {id}: {}", rendered.join(" -> "));
        chains.push(chain.iter().map(|&(_, p)| p).collect::<Vec<_>>());
    }

    // Every observer saw the same chain of primaries.
    assert!(chains.windows(2).all(|w| w[0] == w[1]), "chains diverged");
    let final_primary = primary(
        sim.app::<GroupStack>(NodeId::new(2))
            .group_view(CONTROLLERS),
    );
    assert_eq!(final_primary, Some(NodeId::new(2)));
    println!("\nall observers agree; final primary: node 2 ✓");
}
