//! The full CANELy service portfolio on one bus: membership + clock
//! synchronization + totally ordered atomic broadcast.
//!
//! The paper positions membership as "a crucial assistant … \[that\] may
//! be used to simplify the design of other protocols (e.g. group
//! communication, clock synchronization)". This example runs all
//! three service families side by side on the same simulated CAN bus:
//!
//! * nodes 0–3 run the CANELy membership stack with cyclic traffic;
//! * the same nodes run the clock synchronization service (drifting
//!   oscillators, rotating master);
//! * nodes 4–5 exchange setpoint updates over TOTCAN, so both apply
//!   the *same* sequence of setpoints in the *same* order.
//!
//! Run with `cargo run --release -p examples --bin synchronized_cell`.

use can_bus::{BusConfig, FaultPlan};
use can_controller::{Application, Ctx, DriverEvent, Simulator, TimerId};
use can_types::{BitTime, NodeId, NodeSet, Payload};
use canely::{CanelyConfig, CanelyStack, TrafficConfig};
use canely_broadcast::common::ScheduledSend;
use canely_broadcast::Totcan;
use canely_clock::{ensemble_precision, ClockConfig, ClockSync};
use examples::fmt_ms;
use std::any::Any;

/// A node hosting two protocol entities: membership stack + clock.
struct DualStack {
    membership: CanelyStack,
    clock: ClockSync,
}

impl Application for DualStack {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.membership.on_start(ctx);
        self.clock.on_start(ctx);
    }
    fn on_event(&mut self, ctx: &mut Ctx<'_>, event: &DriverEvent) {
        self.membership.on_event(ctx, event);
        self.clock.on_event(ctx, event);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_>, id: TimerId, tag: u64) {
        // Tag spaces are disjoint: the membership stack ignores the
        // clock's small tags and vice versa (TimerOwner encodes the
        // protocol in the top byte; the clock uses 1 and 2).
        if tag < 16 {
            self.clock.on_timer(ctx, id, tag);
        } else {
            self.membership.on_timer(ctx, id, tag);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() {
    let members = NodeSet::first_n(4);
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());

    for id in 0..4u8 {
        let drift = [120, -60, 30, -90][id as usize];
        let membership = CanelyStack::new(config.clone()).with_traffic(
            TrafficConfig::periodic(BitTime::new(4_000), 4)
                .with_offset(BitTime::new(u64::from(id) * 149)),
        );
        let clock = ClockSync::new(
            ClockConfig::new(members)
                .with_drift_ppm(drift)
                .with_initial_offset(i64::from(id) * 7_000 - 10_000),
        );
        sim.add_node(NodeId::new(id), DualStack { membership, clock });
    }

    // Two controller nodes exchanging setpoints over TOTCAN.
    let abort = BitTime::new(5_000);
    sim.add_node(
        NodeId::new(4),
        Totcan::new(abort).with_schedule(vec![
            ScheduledSend::new(BitTime::new(100_000), Payload::from_slice(&[10]).unwrap()),
            ScheduledSend::new(BitTime::new(300_000), Payload::from_slice(&[30]).unwrap()),
        ]),
    );
    sim.add_node(
        NodeId::new(5),
        Totcan::new(abort).with_schedule(vec![ScheduledSend::new(
            BitTime::new(100_050),
            Payload::from_slice(&[20]).unwrap(),
        )]),
    );

    sim.run_until(BitTime::new(1_000_000));

    // Membership converged (nodes 4/5 do not participate — they run
    // only the broadcast protocol).
    let view = sim
        .app::<DualStack>(NodeId::new(0))
        .membership
        .view();
    println!("membership view of the control group: {view}");
    assert_eq!(view, members);

    // Clocks agree to tens of µs despite drifting oscillators.
    let clocks: Vec<&ClockSync> = (0..4)
        .map(|id| &sim.app::<DualStack>(NodeId::new(id)).clock)
        .collect();
    let precision = ensemble_precision(&clocks, sim.now());
    println!("clock ensemble precision at t={}: {precision} µs", fmt_ms(sim.now()));
    assert!(precision <= 60, "tens-of-µs figure");

    // Both TOTCAN nodes applied the same setpoints in the same order.
    let order4: Vec<u8> = sim
        .app::<Totcan>(NodeId::new(4))
        .deliveries()
        .iter()
        .map(|d| d.payload.as_slice()[0])
        .collect();
    let order5: Vec<u8> = sim
        .app::<Totcan>(NodeId::new(5))
        .deliveries()
        .iter()
        .map(|d| d.payload.as_slice()[0])
        .collect();
    println!("setpoint order at node 4: {order4:?}");
    println!("setpoint order at node 5: {order5:?}");
    assert_eq!(order4, order5, "total order");
    assert_eq!(order4.len(), 3);
    println!("all services healthy on one bus ✓");
}
