//! A distributed control cell — the workload the paper's introduction
//! motivates: "distribution needs to be combined with fault-tolerance
//! and real-time … fieldbuses were sometimes called to higher duties:
//! performing as distributed systems."
//!
//! The cell:
//!
//! * one PLC (node 0) — 2 ms control-loop traffic;
//! * four sensors (nodes 1–4) — 5 ms sampling traffic;
//! * two actuators (nodes 5–6) — 10 ms command echo traffic;
//! * one hot-spare sensor (node 9) — powered off initially.
//!
//! All traffic doubles as implicit heartbeats: with every period below
//! `Th` the membership service costs *zero* extra bandwidth in steady
//! state. Sensor 2 fails mid-run; every node observes the membership
//! change consistently; the hot-spare powers on and is integrated.
//!
//! Run with `cargo run --release -p examples --bin factory_cell`.

use can_bus::{BusConfig, BusStats, FaultPlan};
use can_controller::Simulator;
use can_types::{BitTime, NodeId, NodeSet};
use canely::{CanelyConfig, CanelyStack, TrafficConfig, UpperEvent};
use examples::fmt_ms;

fn main() {
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), FaultPlan::none());

    let add = |sim: &mut Simulator, id: u8, period_us: u64, size: usize| {
        let stack = CanelyStack::new(config.clone()).with_traffic(
            TrafficConfig::periodic(BitTime::new(period_us), size)
                .with_offset(BitTime::new(u64::from(id) * 173 + 7)),
        );
        sim.add_node(NodeId::new(id), stack);
    };

    add(&mut sim, 0, 2_000, 8); // PLC control loop
    for id in 1..=4 {
        add(&mut sim, id, 5_000, 4); // sensors
    }
    for id in 5..=6 {
        add(&mut sim, id, 10_000, 2); // actuators
    }

    // The hot-spare sensor joins at 600 ms.
    let spare = NodeId::new(9);
    sim.add_node_at(
        spare,
        CanelyStack::new(config.clone()).with_traffic(
            TrafficConfig::periodic(BitTime::new(5_000), 4).with_offset(BitTime::new(31)),
        ),
        BitTime::new(600_000),
    );

    // Sensor 2 fails at 400 ms.
    let crash_at = BitTime::new(400_000);
    sim.schedule_crash(NodeId::new(2), crash_at);

    sim.run_until(BitTime::new(1_000_000));

    // --- Report ------------------------------------------------------
    let plc = sim.app::<CanelyStack>(NodeId::new(0));
    println!("factory cell after 1 s of operation");
    println!("  PLC view: {}", plc.view());
    assert_eq!(
        plc.view(),
        NodeSet::from_bits(0b10_0111_1011),
        "PLC must see everyone but the failed sensor"
    );

    let detected = plc
        .events()
        .iter()
        .find(|(_, e)| matches!(e, UpperEvent::FailureNotified(r) if r.as_u8() == 2))
        .map(|&(t, _)| t)
        .expect("sensor failure detected");
    println!(
        "  sensor 2 failure: crashed {} — agreed at {} (latency {})",
        fmt_ms(crash_at),
        fmt_ms(detected),
        fmt_ms(detected - crash_at)
    );

    let joined = plc
        .membership_history()
        .iter()
        .find(|e| e.view.contains(spare))
        .map(|e| e.time)
        .expect("spare integrated");
    println!("  hot-spare integrated at {}", fmt_ms(joined));

    // Steady-state protocol overhead: the implicit heartbeats do the
    // work, so the membership suite consumes (almost) nothing.
    let stats = sim
        .trace()
        .stats(BitTime::new(700_000), BitTime::new(1_000_000));
    let app = stats.of_type(can_types::MsgType::AppData);
    let suite = stats.utilization_of(&BusStats::MEMBERSHIP_SUITE);
    println!(
        "  steady state: app traffic {:.1}% of the bus, membership suite {:.2}%",
        app.busy.as_u64() as f64 / stats.window().as_u64() as f64 * 100.0,
        suite * 100.0
    );
    for id in [0u8, 1, 3, 4, 5, 6, 9] {
        assert_eq!(
            sim.app::<CanelyStack>(NodeId::new(id)).view(),
            plc.view(),
            "all correct nodes agree"
        );
    }
    println!("  all 7 correct nodes agree on the view ✓");
}
