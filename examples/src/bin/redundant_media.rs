//! Media redundancy (\[17\], "A Columbus' egg idea for CAN media
//! redundancy") in action.
//!
//! The CANELy system model *excludes* permanent channel failures such
//! as a medium partition, and the paper's footnote says how that
//! assumption is enforced: by the replicated-media scheme of \[17\].
//! This example shows both sides of that coin on the same scenario —
//! a cable fault severing nodes {2,3} from {0,1} for 300 ms:
//!
//! * on a single-medium bus the partition causes **split brain**: each
//!   side declares the other failed and continues with its own view;
//! * with the dual-media scheme, the same fault on medium 0 is
//!   completely masked by medium 1 — no failure notifications, the
//!   view never changes.
//!
//! Run with `cargo run --release -p examples --bin redundant_media`.

use can_bus::{BusConfig, FaultPlan, MediaFault};
use can_controller::Simulator;
use can_types::{BitTime, NodeId, NodeSet};
use canely::{CanelyConfig, CanelyStack, UpperEvent};
use examples::fmt_ms;

fn run(media_count: usize) -> Simulator {
    let mut faults = FaultPlan::none().with_media_count(media_count);
    faults.push_media_fault(MediaFault {
        medium: 0,
        isolated: NodeSet::from_bits(0b1100), // nodes 2,3 severed
        from: BitTime::new(300_000),
        until: BitTime::new(600_000),
    });
    let config = CanelyConfig::default();
    let mut sim = Simulator::new(BusConfig::default(), faults);
    for id in 0..4u8 {
        sim.add_node(NodeId::new(id), CanelyStack::new(config.clone()));
    }
    sim.run_until(BitTime::new(550_000));
    sim
}

fn report(label: &str, sim: &Simulator) {
    println!("{label}");
    for id in 0..4u8 {
        let stack = sim.app::<CanelyStack>(NodeId::new(id));
        let failures: Vec<String> = stack
            .events()
            .iter()
            .filter_map(|&(t, e)| match e {
                UpperEvent::FailureNotified(r) => Some(format!("{r}@{}", fmt_ms(t))),
                UpperEvent::Expelled => Some(format!("self-expelled@{}", fmt_ms(t))),
                _ => None,
            })
            .collect();
        println!(
            "  node {id}: view {}  failures seen: [{}]",
            stack.view(),
            failures.join(", ")
        );
    }
}

fn main() {
    println!("cable fault: nodes {{2,3}} severed from {{0,1}} on medium 0, 300-600 ms\n");

    let single = run(1);
    report("single medium — the partition splits the membership:", &single);
    let side_a = single.app::<CanelyStack>(NodeId::new(0)).view();
    let side_b = single.app::<CanelyStack>(NodeId::new(2)).view();
    assert_ne!(side_a, side_b, "split brain expected");

    println!();
    let dual = run(2);
    report("dual media ([17]) — the same fault is masked:", &dual);
    for id in 0..4u8 {
        let stack = dual.app::<CanelyStack>(NodeId::new(id));
        assert_eq!(stack.view(), NodeSet::first_n(4));
        assert!(stack
            .events()
            .iter()
            .all(|(_, e)| !matches!(e, UpperEvent::FailureNotified(_))));
    }
    println!("\nthe replicated medium preserves the single-channel assumption ✓");
}
