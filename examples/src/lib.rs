//! Runnable example applications for the CANELy stack.
//!
//! * `quickstart` — five nodes bootstrap a membership view, one
//!   crashes, the survivors agree on the new view.
//! * `factory_cell` — a distributed control cell (PLC, sensors,
//!   actuators) with cyclic traffic as implicit heartbeats, a sensor
//!   failure, and a hot-spare joining.
//! * `fault_storm` — a seeded stochastic fault campaign demonstrating
//!   that the agreement invariants survive inconsistent omissions.
//! * `synchronized_cell` — clock synchronization plus totally ordered
//!   broadcast running alongside the membership service.
//!
//! Run with `cargo run --release -p examples --bin <name>`.

#![forbid(unsafe_code)]

use can_types::{BitTime, NodeId, NodeSet};
use canely::CanelyStack;

/// Pretty-prints a node set as `{0,1,2}`.
pub fn fmt_view(view: NodeSet) -> String {
    view.to_string()
}

/// Prints the membership-change history of one node.
pub fn print_history(label: &str, sim: &can_controller::Simulator, node: NodeId) {
    println!("  history of {label} ({node}):");
    for event in sim.app::<CanelyStack>(node).membership_history() {
        println!(
            "    t={:>9} view={} failed={}",
            fmt_ms(event.time),
            event.view,
            event.failed
        );
    }
}

/// Milliseconds at 1 Mbps.
pub fn fmt_ms(t: BitTime) -> String {
    format!("{:.2}ms", t.as_u64() as f64 / 1_000.0)
}
