#!/usr/bin/env sh
# Benchmark runner: executes the Criterion benches for the trace
# analysis pipeline and the campaign engine and distils their stdout
# into machine-readable summaries:
#
#   BENCH_trace.json     — parse / chain / phases / chrome / reexport
#   BENCH_campaign.json  — worker scaling + per-run / oracle cost
#   BENCH_sim.json       — 64-run scaling, warm-world stepping,
#                          zero-copy parse of a ≥1 MiB trace
#   BENCH_detectors.json — warm per-run cost of each failure-detector
#                          backend (surveillance / swim / add-phi)
#   BENCH_federation.json — federated run cost at 1/2/4 bridged
#                          segments plus the merged seg-tagged export
#   BENCH_metrics.json   — telemetry-plane cost: handle bumps on/off,
#                          an instrumented campaign run, exposition
#
# Everything runs --offline against the vendored criterion harness.
#
# Usage: scripts/bench.sh  (from the repository root or anywhere)

set -eu

cd "$(dirname "$0")/.."

# Turns "group/name: mean 8.600 ms / min 7.636 ms over 30 samples"
# lines into one JSON object with both human units and nanoseconds.
summarize() {
    awk '
    function ns(v,    a, f) {
        split(v, a, " ")
        f = (a[2] == "s") ? 1e9 : (a[2] == "ms") ? 1e6 : (a[2] == "ns") ? 1 : 1e3
        return a[1] * f
    }
    BEGIN { printf("{\"benchmarks\":[") }
    / over [0-9]+ samples$/ {
        label = $0; sub(/: mean .*/, "", label)
        rest = $0; sub(/^.*: mean /, "", rest)
        split(rest, halves, / \/ min /)
        mean = halves[1]
        split(halves[2], tail, / over /)
        min = tail[1]
        samples = tail[2]; sub(/ samples$/, "", samples)
        if (n++) printf(",")
        printf("{\"id\":\"%s\",\"mean\":\"%s\",\"mean_ns\":%.0f,\"min\":\"%s\",\"min_ns\":%.0f,\"samples\":%s}",
               label, mean, ns(mean), min, ns(min), samples)
    }
    END { printf("]}\n") }
    '
}

run_bench() {
    name="$1"
    echo "==> cargo bench -p bench --bench $name --offline"
    out="$(cargo bench -p bench --bench "$name" --offline)"
    echo "$out"
    echo "$out" | summarize > "BENCH_$name.json"
    echo "==> wrote BENCH_$name.json"
}

run_bench trace
run_bench campaign
run_bench sim
run_bench detectors
run_bench federation
run_bench metrics
