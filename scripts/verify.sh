#!/usr/bin/env sh
# Full verification gate: build, test, docs, lints.
#
# Everything runs --offline: the workspace vendors its few external
# dependencies (vendor/{rand,proptest,criterion}) so no network access
# is needed — or allowed — to verify.
#
# Usage: scripts/verify.sh  (from the repository root or anywhere)

set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline
run cargo test --workspace --offline -q
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline -q
run cargo clippy --workspace --all-targets --offline -q -- -D warnings

# Bounded smoke campaign (fixed seeds, finishes in seconds): the
# invariant oracle must come back clean, and the summary must be
# byte-identical across worker counts (the engine's determinism
# guarantee).
echo "==> target/release/canelyctl campaign run --spec scenarios/smoke.campaign"
summary="$(target/release/canelyctl campaign run --spec scenarios/smoke.campaign --workers 4 --json)"
echo "$summary"
case "$summary" in
*'"violating_runs":[]'*) ;;
*)
    echo "verify: smoke campaign reported invariant violations" >&2
    exit 1
    ;;
esac
resummary="$(target/release/canelyctl campaign run --spec scenarios/smoke.campaign --workers 2 --json)"
if [ "$summary" != "$resummary" ]; then
    echo "verify: campaign summary differs across worker counts" >&2
    exit 1
fi

echo "==> verify: all green"
