#!/usr/bin/env sh
# Full verification gate: build, test, docs, lints.
#
# Everything runs --offline: the workspace vendors its few external
# dependencies (vendor/{rand,proptest,criterion}) so no network access
# is needed — or allowed — to verify.
#
# Usage: scripts/verify.sh  (from the repository root or anywhere)

set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline
run cargo test --workspace --offline -q
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline -q
run cargo clippy --workspace --all-targets --offline -q -- -D warnings

echo "==> verify: all green"
