#!/usr/bin/env sh
# Full verification gate: build, test, docs, lints.
#
# Everything runs --offline: the workspace vendors its few external
# dependencies (vendor/{rand,proptest,criterion}) so no network access
# is needed — or allowed — to verify.
#
# Usage: scripts/verify.sh  (from the repository root or anywhere)

set -eu

cd "$(dirname "$0")/.."

run() {
    echo "==> $*"
    "$@"
}

run cargo build --release --workspace --offline
run cargo test --workspace --offline -q
run env RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline -q
run cargo clippy --workspace --all-targets --offline -q -- -D warnings

# Bounded smoke campaign (fixed seeds, finishes in seconds): the
# invariant oracle must come back clean, and the summary must be
# byte-identical across worker counts (the engine's determinism
# guarantee).
echo "==> target/release/canelyctl campaign run --spec scenarios/smoke.campaign"
summary="$(target/release/canelyctl campaign run --spec scenarios/smoke.campaign --workers 4 --json)"
echo "$summary"
case "$summary" in
*'"violating_runs":[]'*) ;;
*)
    echo "verify: smoke campaign reported invariant violations" >&2
    exit 1
    ;;
esac
resummary="$(target/release/canelyctl campaign run --spec scenarios/smoke.campaign --workers 2 --json)"
if [ "$summary" != "$resummary" ]; then
    echo "verify: campaign summary differs across worker counts" >&2
    exit 1
fi

# Telemetry gates (docs/METRICS.md): streaming progress must change
# no summary byte, must actually stream (progress lines with a [done]
# tail plus --metrics-json registry snapshots, all on stderr), and
# the one-shot live exposition must match the checked-in goldens byte
# for byte in both formats.
echo "==> campaign run --progress gate"
progress_err="target/verify-progress.stderr"
progress="$(target/release/canelyctl campaign run --spec scenarios/smoke.campaign \
    --workers 4 --json --progress --metrics-json --progress-interval-ms 20 \
    2>"$progress_err")"
if [ "$progress" != "$summary" ]; then
    echo "verify: --progress perturbed the campaign summary" >&2
    exit 1
fi
case "$(cat "$progress_err")" in
*'progress: '*'[done]'*) ;;
*)
    echo "verify: --progress emitted no progress lines" >&2
    exit 1
    ;;
esac
case "$(cat "$progress_err")" in
*'{"metrics":['*) ;;
*)
    echo "verify: --metrics-json streamed no registry snapshots" >&2
    exit 1
    ;;
esac

echo "==> metrics --live golden gate"
if ! target/release/canelyctl metrics --nodes 4 --crash 2@250ms --until 400ms --live \
    | cmp -s - tests/golden/metrics_live.prom; then
    echo "verify: metrics --live diverged from tests/golden/metrics_live.prom" >&2
    exit 1
fi
if ! target/release/canelyctl metrics --nodes 4 --crash 2@250ms --until 400ms --live --json \
    | cmp -s - tests/golden/metrics_live.json; then
    echo "verify: metrics --live --json diverged from tests/golden/metrics_live.json" >&2
    exit 1
fi

# Detector shootout smoke gate: a tiny multi-backend matrix (one
# seed per backend over the shootout dimensions) must run the oracle
# clean for every backend, emit the per-backend comparison, and stay
# byte-identical across worker counts (docs/DETECTORS.md tells
# readers to reproduce its table with exactly this command).
echo "==> target/release/canelyctl campaign run --spec scenarios/shootout.campaign"
shootout="$(target/release/canelyctl campaign run --spec scenarios/shootout.campaign --workers 4 --json)"
echo "$shootout"
case "$shootout" in
*'"violating_runs":[]'*) ;;
*)
    echo "verify: shootout campaign reported invariant violations" >&2
    exit 1
    ;;
esac
case "$shootout" in
*'"shootout":['*'"detector":"surveillance"'*'"detector":"swim"'*'"detector":"add-phi"'*) ;;
*)
    echo "verify: shootout campaign did not emit the per-backend comparison" >&2
    exit 1
    ;;
esac
reshootout="$(target/release/canelyctl campaign run --spec scenarios/shootout.campaign --workers 2 --json)"
if [ "$shootout" != "$reshootout" ]; then
    echo "verify: shootout summary differs across worker counts" >&2
    exit 1
fi

# Federation smoke gate: four bridged 32-node segments under node
# crashes, gateway crashes and an inter-segment partition/heal. The
# oracle must come back clean — including the global-view agreement
# and validity invariants across the surviving gateways — and the
# summary must stay byte-identical across worker counts.
echo "==> target/release/canelyctl campaign run --spec scenarios/federation.campaign"
federation="$(target/release/canelyctl campaign run --spec scenarios/federation.campaign --workers 4 --json)"
echo "$federation"
case "$federation" in
*'"violating_runs":[]'*) ;;
*)
    echo "verify: federation campaign reported invariant violations" >&2
    exit 1
    ;;
esac
refederation="$(target/release/canelyctl campaign run --spec scenarios/federation.campaign --workers 2 --json)"
if [ "$federation" != "$refederation" ]; then
    echo "verify: federation summary differs across worker counts" >&2
    exit 1
fi

# Self-healing failover gate: four bridged 16-node segments whose
# gateway crashes mid-run and powers back on 60 ms later. The oracle
# must come back clean — including the rejoin-latency invariant (a
# successor elects itself, bumps the epoch and re-converges the
# global view within the analytic rejoin bound) — and the summary
# must be byte-identical at 1 and 8 workers.
echo "==> target/release/canelyctl campaign run --spec scenarios/failover.campaign"
failover="$(target/release/canelyctl campaign run --spec scenarios/failover.campaign --workers 1 --json)"
echo "$failover"
case "$failover" in
*'"violating_runs":[]'*) ;;
*)
    echo "verify: failover campaign reported invariant violations" >&2
    exit 1
    ;;
esac
refailover="$(target/release/canelyctl campaign run --spec scenarios/failover.campaign --workers 8 --json)"
if [ "$failover" != "$refailover" ]; then
    echo "verify: failover summary differs between 1 and 8 workers" >&2
    exit 1
fi

# Campaign scaling smoke gate: fanning the same matrix out to 8
# workers must never be *slower* than running it on 1. On a multi-core
# host this also catches lost parallelism; on a single hardware thread
# the two legitimately tie, so the gate compares best-of-3 wall times
# with a 25% relative plus 50 ms absolute tolerance for scheduler and
# process-startup noise (see docs/PERF.md).
echo "==> campaign scaling gate"
best_ms() {
    best=""
    for _ in 1 2 3; do
        start=$(date +%s%N)
        target/release/canelyctl campaign run \
            --spec scenarios/smoke.campaign --workers "$1" --json > /dev/null
        end=$(date +%s%N)
        ms=$(((end - start) / 1000000))
        if [ -z "$best" ] || [ "$ms" -lt "$best" ]; then best="$ms"; fi
    done
    echo "$best"
}
serial_ms="$(best_ms 1)"
fanout_ms="$(best_ms 8)"
echo "    best-of-3 wall time: 1 worker ${serial_ms}ms, 8 workers ${fanout_ms}ms"
if [ "$fanout_ms" -gt $((serial_ms + serial_ms / 4 + 50)) ]; then
    echo "verify: 8-worker campaign (${fanout_ms}ms) is slower than 1-worker (${serial_ms}ms) beyond tolerance" >&2
    exit 1
fi

# Trace round-trip gate: the canonical JSONL export must survive a
# parse → re-export cycle byte-for-byte (the `tq` query engine and the
# campaign analytics both build on this losslessness).
echo "==> trace round-trip gate"
trace_dir="target/verify-trace"
mkdir -p "$trace_dir"
target/release/canelyctl trace --nodes 4 --crash 2@250ms --until 500ms --jsonl \
    > "$trace_dir/episode.trace.jsonl"
target/release/canelyctl tq reexport --trace "$trace_dir/episode.trace.jsonl" \
    > "$trace_dir/episode.reexport.jsonl"
if ! cmp -s "$trace_dir/episode.trace.jsonl" "$trace_dir/episode.reexport.jsonl"; then
    echo "verify: trace export → parse → re-export is not lossless" >&2
    exit 1
fi

# tq smoke queries against the checked-in scenarios: the causal chain
# behind the partition_heal crash must resolve end to end, and the
# phase profile must report measured-vs-bound headroom.
echo "==> tq smoke queries"
chain="$(target/release/canelyctl tq chain \
    --scenario scenarios/partition_heal.canely --suspect 3)"
case "$chain" in
*'chain complete: view installed without n3'*) ;;
*)
    echo "verify: partition_heal causal chain is incomplete:" >&2
    echo "$chain" >&2
    exit 1
    ;;
esac
phases="$(target/release/canelyctl tq phases \
    --scenario scenarios/partition_heal.canely)"
case "$phases" in
*'headroom='*) ;;
*)
    echo "verify: tq phases reported no bound headroom:" >&2
    echo "$phases" >&2
    exit 1
    ;;
esac
summary="$(target/release/canelyctl tq summary --scenario scenarios/lifecycle.canely)"
case "$summary" in
*'protocol events:'*) ;;
*)
    echo "verify: tq summary produced no event counts" >&2
    exit 1
    ;;
esac
chrome="$(target/release/canelyctl trace --nodes 3 --crash 2@250ms --until 300ms --chrome)"
case "$chrome" in
'{"traceEvents":['*'"displayTimeUnit":"ms"}'*) ;;
*)
    echo "verify: chrome export is not a trace-event document" >&2
    exit 1
    ;;
esac

echo "==> verify: all green"
